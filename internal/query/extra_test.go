package query

import (
	"errors"
	"math"
	"testing"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/piecewise"
	"repro/internal/poly"
	"repro/internal/trajectory"
)

// TestSpeedGDistanceWithChDir exercises a discontinuous g-distance (the
// paper's relaxed definition): rank objects by speed while chdir updates
// change speeds mid-query.
func TestSpeedGDistanceWithChDir(t *testing.T) {
	db := mod.NewDB(2, -1)
	must(t, db.Load(1, trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))))  // speed 1
	must(t, db.Load(2, trajectory.Linear(0, geom.Of(3, 0), geom.Of(10, 0)))) // speed 3
	knn := NewKNN(1)                                                         // slowest object
	sess, err := NewSession(db, gdist.SpeedSq{}, 0, 100, knn)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	if cur := knn.Current(); len(cur) != 1 || cur[0] != 1 {
		t.Fatalf("slowest = %v, want o1", cur)
	}
	// o1 accelerates to speed 5 at t=10: o2 becomes slowest instantly
	// (a jump in the curve, no intersection).
	if err := sess.Apply(mod.ChDir(1, 10, geom.Of(5, 0))); err != nil {
		t.Fatal(err)
	}
	if err := sess.AdvanceTo(11); err != nil {
		t.Fatal(err)
	}
	if cur := knn.Current(); len(cur) != 1 || cur[0] != 2 {
		t.Fatalf("slowest after chdir = %v, want o2", cur)
	}
	_ = sess.Close()
	iv2 := knn.Answer().Intervals(2)
	if len(iv2) != 1 || math.Abs(iv2[0].Lo-10) > 1e-9 {
		t.Errorf("o2 slowest intervals %v, want from 10", iv2)
	}
}

// TestSpeedDiscontinuityRecordedInHistory: a past query over trajectories
// whose recorded turns change speed — the jumps are re-certified during
// the replay.
func TestSpeedDiscontinuityRecordedInHistory(t *testing.T) {
	db := mod.NewDB(2, -1)
	tr := trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))
	tr2, err := tr.ChDir(10, geom.Of(4, 0)) // speed 1 -> 4 at t=10
	must(t, err)
	must(t, db.Load(1, tr2))
	must(t, db.Load(2, trajectory.Linear(0, geom.Of(2, 0), geom.Of(5, 5))))
	knn := NewKNN(1)
	if _, err := RunPast(db, gdist.SpeedSq{}, 0, 20, knn); err != nil {
		t.Fatal(err)
	}
	iv1 := knn.Answer().Intervals(1)
	if len(iv1) != 1 || math.Abs(iv1[0].Hi-10) > 1e-9 {
		t.Errorf("o1 slowest %v, want [0,10]", iv1)
	}
	iv2 := knn.Answer().Intervals(2)
	if len(iv2) != 1 || math.Abs(iv2[0].Lo-10) > 1e-9 || math.Abs(iv2[0].Hi-20) > 1e-9 {
		t.Errorf("o2 slowest %v, want [10,20]", iv2)
	}
}

// TestTimeTermLookahead exercises non-identity polynomial time terms
// (Section 4: time terms are polynomials over t): the query "who will be
// nearest 5 time units from now" answers 5 units early.
func TestTimeTermLookahead(t *testing.T) {
	db := mod.NewDB(1, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(5))))           // dist^2 = 25
	must(t, db.Load(2, trajectory.Linear(0, geom.Of(-1), geom.Of(15)))) // (15-t)^2
	// Identity-term 1-NN: o2 takes over when (15-t)^2 < 25, i.e. t > 10.
	phiNow := ForAll{Var: "z", Body: Atom{L: F{Var: "y"}, Op: LE, R: F{Var: "z"}}}
	now := NewFormula("y", phiNow)
	if _, err := RunPast(db, gdist.PointSq{Point: geom.Of(0)}, 0, 14, now); err != nil {
		t.Fatal(err)
	}
	// Lookahead term p(t) = t + 5 (term index 1).
	phiFuture := ForAll{Var: "z", Body: Atom{
		L: F{Var: "y", TermIndex: 1}, Op: LE, R: F{Var: "z", TermIndex: 1}}}
	fut := NewFormula("y", phiFuture)
	terms := []poly.Poly{poly.X(), poly.New(5, 1)}
	if _, err := RunPastTerms(db, gdist.PointSq{Point: geom.Of(0)}, 0, 14, terms, fut); err != nil {
		t.Fatal(err)
	}
	if err := fut.Err(); err != nil {
		t.Fatal(err)
	}
	// The identity query hands over at 10; the lookahead one at 5.
	ivNow := now.Answer().Intervals(2)
	if len(ivNow) != 1 || math.Abs(ivNow[0].Lo-10) > 1e-6 {
		t.Errorf("identity handover %v, want at 10", ivNow)
	}
	ivFut := fut.Answer().Intervals(2)
	if len(ivFut) != 1 || math.Abs(ivFut[0].Lo-5) > 1e-6 {
		t.Errorf("lookahead handover %v, want at 5", ivFut)
	}
}

// TestTimeTermOutOfRange: referencing an unregistered time term fails at
// attach.
func TestTimeTermOutOfRange(t *testing.T) {
	db := mod.NewDB(1, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(5))))
	phi := Atom{L: F{Var: "y", TermIndex: 3}, Op: LE, R: C{Value: 1}}
	form := NewFormula("y", phi)
	if _, err := RunPast(db, gdist.PointSq{Point: geom.Of(0)}, 0, 10, form); err == nil {
		t.Error("out-of-range time term accepted")
	}
}

// TestEngineAccessors covers the read-side helpers.
func TestEngineAccessors(t *testing.T) {
	db := mod.NewDB(1, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(5))))
	e, err := NewEngine(EngineConfig{F: gdist.PointSq{Point: geom.Of(0)}, Lo: 0, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	must(t, e.Seed(db.Trajectories()))
	if lo, hi := e.Window(); lo != 0 || hi != 10 {
		t.Errorf("Window = [%g,%g]", lo, hi)
	}
	if e.GDistance() == nil {
		t.Error("GDistance nil")
	}
	if _, ok := e.Traj(1); !ok {
		t.Error("Traj(1) missing")
	}
	if _, ok := e.Traj(9); ok {
		t.Error("Traj(9) present")
	}
	if n := e.NumObjects(); n != 1 {
		t.Errorf("NumObjects = %d", n)
	}
	if e.UpdatesApplied() != 0 {
		t.Error("UpdatesApplied")
	}
	must(t, e.ApplyUpdate(mod.New(2, 5, geom.Of(0), geom.Of(1))))
	if e.UpdatesApplied() != 1 || e.NumObjects() != 2 {
		t.Error("after update")
	}
}

// TestFormulaStrings covers the Stringers used in diagnostics.
func TestFormulaStrings(t *testing.T) {
	phi := ForAll{Var: "z", Body: Implies{
		X: Atom{L: F{Var: "z"}, Op: NE, R: F{Var: "y"}},
		Y: Or{
			X: Atom{L: F{Var: "y"}, Op: LT, R: F{Var: "z"}},
			Y: Not{X: Exists{Var: "w", Body: Atom{L: F{Var: "w", TermIndex: 1}, Op: GT, R: C{Value: 3}}}},
		},
	}}
	s := phi.String()
	for _, want := range []string{"∀z", "∃w", "f(y,t)", "f(w,p1(t))", "¬", "∨", "→", "3"} {
		if !contains(s, want) {
			t.Errorf("String %q missing %q", s, want)
		}
	}
	for _, op := range []CmpOp{EQ, NE, LT, LE, GT, GE, CmpOp(99)} {
		if op.String() == "" {
			t.Error("empty op string")
		}
	}
}

// TestFormulaImpliesEval checks the implication connective's truth table
// through evaluation.
func TestFormulaImpliesEval(t *testing.T) {
	db := mod.NewDB(1, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(2)))) // d^2 = 4
	// (4 <= 3) -> (4 <= 100): vacuously true.
	phi := Implies{
		X: Atom{L: F{Var: "y"}, Op: LE, R: C{Value: 3}},
		Y: Atom{L: F{Var: "y"}, Op: LE, R: C{Value: 100}},
	}
	form := NewFormula("y", phi)
	if _, err := RunPast(db, gdist.PointSq{Point: geom.Of(0)}, 0, 10, form); err != nil {
		t.Fatal(err)
	}
	if got := form.Answer().At(5); len(got) != 1 {
		t.Errorf("vacuous implication: %v", got)
	}
	// (4 <= 100) -> (4 <= 3): false.
	phi2 := Implies{
		X: Atom{L: F{Var: "y"}, Op: LE, R: C{Value: 100}},
		Y: Atom{L: F{Var: "y"}, Op: LE, R: C{Value: 3}},
	}
	form2 := NewFormula("y", phi2)
	if _, err := RunPast(db, gdist.PointSq{Point: geom.Of(0)}, 0, 10, form2); err != nil {
		t.Fatal(err)
	}
	if got := form2.Answer().At(5); len(got) != 0 {
		t.Errorf("failed implication: %v", got)
	}
}

// TestWithinCurrent covers the live-set accessor.
func TestWithinCurrent(t *testing.T) {
	db := mod.NewDB(1, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(2))))
	must(t, db.Load(2, trajectory.Stationary(0, geom.Of(50))))
	w := NewWithin(25)
	sess, err := NewSession(db, gdist.PointSq{Point: geom.Of(0)}, 0, 100, w)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AdvanceTo(1); err != nil {
		t.Fatal(err)
	}
	if cur := w.Current(); len(cur) != 1 || cur[0] != 1 {
		t.Errorf("Current = %v", cur)
	}
}

func contains(s, sub string) bool {
	return len(s) >= len(sub) && (s == sub || len(sub) == 0 || indexOf(s, sub) >= 0)
}

func indexOf(s, sub string) int {
	for i := 0; i+len(sub) <= len(s); i++ {
		if s[i:i+len(sub)] == sub {
			return i
		}
	}
	return -1
}

// failingDist errors after a configurable number of Curve calls —
// failure injection for the engine's update path.
type failingDist struct {
	inner gdist.GDistance
	calls *int
	after int
}

func (f failingDist) Name() string { return "failing" }
func (f failingDist) Curve(tr trajectory.Trajectory, lo, hi float64) (piecewise.Func, error) {
	*f.calls++
	if *f.calls > f.after {
		return piecewise.Func{}, errInjected
	}
	return f.inner.Curve(tr, lo, hi)
}

var errInjected = errors.New("injected curve failure")

func TestEngineSurvivesCurveFailure(t *testing.T) {
	db := mod.NewDB(1, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(1))))
	must(t, db.Load(2, trajectory.Stationary(0, geom.Of(5))))
	calls := 0
	fd := failingDist{inner: gdist.PointSq{Point: geom.Of(0)}, calls: &calls, after: 2}
	knn := NewKNN(1)
	sess, err := NewSession(db, fd, 0, 100, knn)
	if err != nil {
		t.Fatal(err) // seeding uses 2 calls: fine
	}
	if err := sess.AdvanceTo(5); err != nil {
		t.Fatal(err)
	}
	// The third curve build (a new object) fails; the error must surface
	// and the existing sweep state must stay usable.
	err = sess.Apply(mod.New(3, 6, geom.Of(0), geom.Of(0.5)))
	if !errors.Is(err, errInjected) {
		t.Fatalf("err = %v, want injected failure", err)
	}
	if err := sess.AdvanceTo(10); err != nil {
		t.Fatalf("sweep unusable after failed update: %v", err)
	}
	if cur := knn.Current(); len(cur) != 1 || cur[0] != 1 {
		t.Errorf("answer corrupted after failed update: %v", cur)
	}
	// A chdir whose rebuild fails must also surface cleanly.
	err = sess.Apply(mod.ChDir(1, 12, geom.Of(1)))
	if !errors.Is(err, errInjected) {
		t.Fatalf("chdir err = %v", err)
	}
}
