package query

import (
	"errors"
	"fmt"
	"sort"

	"repro/internal/core"
	"repro/internal/mod"
	"repro/internal/piecewise"
)

// This file implements the full FO(f) language of Section 4: many-sorted
// first-order logic whose real terms are f(z, p(t)) for object variables
// z and polynomial time terms p, plus real constants; formulas combine
// equality/order atoms with propositional connectives and quantifiers
// over objects.
//
// The generic evaluator re-derives the satisfying set from the precedence
// relation at every support change (Lemma 8 guarantees nothing changes in
// between). Its per-change cost is O(N * |phi| * N^q) for q nested
// quantifiers — the price of full generality; the special-cased KNN and
// Within evaluators above handle the common shapes in O(k)/O(1).

// CmpOp is a comparison operator of an FO(f) atom.
type CmpOp int

// Comparison operators.
const (
	EQ CmpOp = iota
	NE
	LT
	LE
	GT
	GE
)

// String implements fmt.Stringer.
func (op CmpOp) String() string {
	switch op {
	case EQ:
		return "="
	case NE:
		return "!="
	case LT:
		return "<"
	case LE:
		return "<="
	case GT:
		return ">"
	case GE:
		return ">="
	default:
		return "?"
	}
}

// Term is a real term of FO(f).
type Term interface {
	// curveID resolves the term to a sweep curve id under the bindings.
	curveID(ev *Formula, binds map[string]mod.OID) (uint64, error)
	String() string
}

// F is the term f(Var, timeTerm). TermIndex selects one of the engine's
// time terms (0 is the identity t).
type F struct {
	Var       string
	TermIndex int
}

// String implements Term.
func (f F) String() string {
	if f.TermIndex == 0 {
		return fmt.Sprintf("f(%s,t)", f.Var)
	}
	return fmt.Sprintf("f(%s,p%d(t))", f.Var, f.TermIndex)
}

func (f F) curveID(ev *Formula, binds map[string]mod.OID) (uint64, error) {
	o, ok := binds[f.Var]
	if !ok {
		return 0, fmt.Errorf("query: unbound object variable %q", f.Var)
	}
	return packObj(o, f.TermIndex), nil
}

// C is a real constant term.
type C struct {
	Value float64
}

// String implements Term.
func (c C) String() string { return fmt.Sprintf("%g", c.Value) }

func (c C) curveID(ev *Formula, binds map[string]mod.OID) (uint64, error) {
	id, ok := ev.constIDs[c.Value]
	if !ok {
		return 0, fmt.Errorf("query: constant %g not registered", c.Value)
	}
	return id, nil
}

// Node is a formula node.
type Node interface {
	eval(ev *Formula, binds map[string]mod.OID, t float64) (bool, error)
	walkTerms(fn func(Term))
	String() string
}

// Atom compares two real terms.
type Atom struct {
	L  Term
	Op CmpOp
	R  Term
}

// String implements Node.
func (a Atom) String() string { return fmt.Sprintf("%s %s %s", a.L, a.Op, a.R) }

func (a Atom) walkTerms(fn func(Term)) { fn(a.L); fn(a.R) }

func (a Atom) eval(ev *Formula, binds map[string]mod.OID, t float64) (bool, error) {
	la, err := a.L.curveID(ev, binds)
	if err != nil {
		return false, err
	}
	rb, err := a.R.curveID(ev, binds)
	if err != nil {
		return false, err
	}
	cmp, err := ev.cmpCurves(la, rb, t)
	if err != nil {
		return false, err
	}
	switch a.Op {
	case EQ:
		return cmp == 0, nil
	case NE:
		return cmp != 0, nil
	case LT:
		return cmp < 0, nil
	case LE:
		return cmp <= 0, nil
	case GT:
		return cmp > 0, nil
	case GE:
		return cmp >= 0, nil
	default:
		return false, fmt.Errorf("query: bad operator %d", a.Op)
	}
}

// Not negates a formula.
type Not struct{ X Node }

// String implements Node.
func (n Not) String() string          { return "¬(" + n.X.String() + ")" }
func (n Not) walkTerms(fn func(Term)) { n.X.walkTerms(fn) }
func (n Not) eval(ev *Formula, b map[string]mod.OID, t float64) (bool, error) {
	v, err := n.X.eval(ev, b, t)
	return !v, err
}

// And is conjunction.
type And struct{ X, Y Node }

// String implements Node.
func (n And) String() string          { return "(" + n.X.String() + " ∧ " + n.Y.String() + ")" }
func (n And) walkTerms(fn func(Term)) { n.X.walkTerms(fn); n.Y.walkTerms(fn) }
func (n And) eval(ev *Formula, b map[string]mod.OID, t float64) (bool, error) {
	v, err := n.X.eval(ev, b, t)
	if err != nil || !v {
		return false, err
	}
	return n.Y.eval(ev, b, t)
}

// Or is disjunction.
type Or struct{ X, Y Node }

// String implements Node.
func (n Or) String() string          { return "(" + n.X.String() + " ∨ " + n.Y.String() + ")" }
func (n Or) walkTerms(fn func(Term)) { n.X.walkTerms(fn); n.Y.walkTerms(fn) }
func (n Or) eval(ev *Formula, b map[string]mod.OID, t float64) (bool, error) {
	v, err := n.X.eval(ev, b, t)
	if err != nil || v {
		return v, err
	}
	return n.Y.eval(ev, b, t)
}

// Implies is material implication.
type Implies struct{ X, Y Node }

// String implements Node.
func (n Implies) String() string          { return "(" + n.X.String() + " → " + n.Y.String() + ")" }
func (n Implies) walkTerms(fn func(Term)) { n.X.walkTerms(fn); n.Y.walkTerms(fn) }
func (n Implies) eval(ev *Formula, b map[string]mod.OID, t float64) (bool, error) {
	v, err := n.X.eval(ev, b, t)
	if err != nil || !v {
		return true, err
	}
	return n.Y.eval(ev, b, t)
}

// ForAll quantifies Var over the live objects of the database.
type ForAll struct {
	Var  string
	Body Node
}

// String implements Node.
func (n ForAll) String() string          { return "∀" + n.Var + "(" + n.Body.String() + ")" }
func (n ForAll) walkTerms(fn func(Term)) { n.Body.walkTerms(fn) }
func (n ForAll) eval(ev *Formula, b map[string]mod.OID, t float64) (bool, error) {
	for _, o := range ev.liveObjects() {
		b[n.Var] = o
		v, err := n.Body.eval(ev, b, t)
		if err != nil {
			delete(b, n.Var)
			return false, err
		}
		if !v {
			delete(b, n.Var)
			return false, nil
		}
	}
	delete(b, n.Var)
	return true, nil
}

// Exists quantifies Var over the live objects of the database.
type Exists struct {
	Var  string
	Body Node
}

// String implements Node.
func (n Exists) String() string          { return "∃" + n.Var + "(" + n.Body.String() + ")" }
func (n Exists) walkTerms(fn func(Term)) { n.Body.walkTerms(fn) }
func (n Exists) eval(ev *Formula, b map[string]mod.OID, t float64) (bool, error) {
	for _, o := range ev.liveObjects() {
		b[n.Var] = o
		v, err := n.Body.eval(ev, b, t)
		if err != nil {
			delete(b, n.Var)
			return false, err
		}
		if v {
			delete(b, n.Var)
			return true, nil
		}
	}
	delete(b, n.Var)
	return false, nil
}

// Formula is the generic FO(f) evaluator for a query (y, t, I, phi).
type Formula struct {
	// Y is the free object variable's name.
	Y string
	// Phi is the formula body (free variables: Y only).
	Phi Node

	e        *Engine
	ans      *AnswerSet
	cur      map[mod.OID]bool
	constIDs map[float64]uint64
	after    bool // comparison semantics: just-after vs at-instant
	err      error
}

// NewFormula builds a generic evaluator for phi with free variable y.
func NewFormula(y string, phi Node) *Formula {
	return &Formula{Y: y, Phi: phi}
}

// Attach implements Evaluator: registers every constant as a curve.
func (ev *Formula) Attach(e *Engine) error {
	if ev.Phi == nil || ev.Y == "" {
		return errors.New("query: Formula needs a body and a free variable")
	}
	ev.e = e
	ev.ans = NewAnswerSet()
	ev.cur = make(map[mod.OID]bool)
	ev.constIDs = make(map[float64]uint64)
	var attachErr error
	ev.Phi.walkTerms(func(tm Term) {
		if c, ok := tm.(C); ok && attachErr == nil {
			id, err := e.ConstID(c.Value)
			if err != nil {
				attachErr = err
				return
			}
			ev.constIDs[c.Value] = id
		}
		if f, ok := tm.(F); ok && attachErr == nil {
			if f.TermIndex < 0 || f.TermIndex >= len(e.terms) {
				attachErr = fmt.Errorf("query: term index %d out of range (%d time terms)",
					f.TermIndex, len(e.terms))
			}
		}
	})
	return attachErr
}

// liveObjects lists the objects currently in the sweep with ALL their
// term curves registered (an object mid-insertion — some terms added,
// others pending — is not yet visible), ascending.
func (ev *Formula) liveObjects() []mod.OID {
	var out []mod.OID
	for o := range ev.e.trajs {
		all := true
		for term := range ev.e.terms {
			if !ev.e.sw.Contains(packObj(o, term)) {
				all = false
				break
			}
		}
		if all {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// cmpCurves compares two curves at time t: -1, 0, +1. In after-mode ties
// are broken by the sign of the difference immediately after t, so the
// result reflects the open interval following the event.
func (ev *Formula) cmpCurves(a, b uint64, t float64) (int, error) {
	if a == b {
		return 0, nil
	}
	fa, ok := ev.e.sw.Curve(a)
	if !ok {
		return 0, fmt.Errorf("query: curve %d missing", a)
	}
	fb, ok := ev.e.sw.Curve(b)
	if !ok {
		return 0, fmt.Errorf("query: curve %d missing", b)
	}
	va, vb := fa.Eval(t), fb.Eval(t)
	scale := 1.0
	if s := maxAbs(va, vb); s > 1 {
		scale = s
	}
	if d := va - vb; d < -1e-9*scale || d > 1e-9*scale {
		if d < 0 {
			return -1, nil
		}
		return 1, nil
	}
	if ev.after {
		return piecewise.SignDiffAfter(fa, fb, t), nil
	}
	return 0, nil
}

func maxAbs(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

// SnapshotAt evaluates Q[D]_t exactly at instant t (ties count as equal).
func (ev *Formula) SnapshotAt(t float64) ([]mod.OID, error) {
	ev.after = false
	return ev.satisfying(t)
}

// satisfying returns the objects o with phi(o, t) true under the current
// comparison semantics.
func (ev *Formula) satisfying(t float64) ([]mod.OID, error) {
	var out []mod.OID
	binds := make(map[string]mod.OID)
	for _, o := range ev.liveObjects() {
		binds[ev.Y] = o
		v, err := ev.Phi.eval(ev, binds, t)
		if err != nil {
			return nil, err
		}
		if v {
			out = append(out, o)
		}
	}
	return out, nil
}

// OnChange implements Evaluator: recompute the satisfying set with
// just-after semantics, and on meeting instants also record point
// memberships with at-instant semantics.
func (ev *Formula) OnChange(c core.Change) {
	if c.Kind == core.ChangeEqual || c.Kind == core.ChangeSeparate {
		// Point memberships at the instant itself.
		if snap, err := ev.SnapshotAt(c.T); err == nil {
			for _, o := range snap {
				if !ev.cur[o] {
					ev.ans.Point(o, c.T)
				}
			}
		}
	}
	ev.after = true
	now, err := ev.satisfying(c.T)
	if err != nil {
		// Evaluation errors indicate unbound variables or missing
		// curves — programming errors surfaced via Err().
		ev.err = err
		return
	}
	inNow := make(map[mod.OID]bool, len(now))
	for _, o := range now {
		inNow[o] = true
		if !ev.cur[o] {
			ev.cur[o] = true
			ev.ans.Enter(o, c.T)
		}
	}
	for o := range ev.cur {
		if !inNow[o] {
			delete(ev.cur, o)
			ev.ans.Leave(o, c.T)
		}
	}
}

// Err returns the first evaluation error encountered, if any.
func (ev *Formula) Err() error { return ev.err }

// Finish implements Evaluator.
func (ev *Formula) Finish(t float64) { ev.ans.Finish(t) }

// Answer returns the accumulated answer set.
func (ev *Formula) Answer() *AnswerSet { return ev.ans }
