package query

import (
	"fmt"

	"repro/internal/core"
	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/tindex"
	"repro/internal/trajectory"
)

// Historian answers repeated past queries over one frozen view of the
// database. It snapshots the trajectories once and builds a lifetime
// interval index (internal/tindex), so each query seeds its sweep from
// only the objects whose lifetimes intersect the query window — the
// access-path role the paper's related work assigns to moving-object
// indexing ([1, 17, 22]).
type Historian struct {
	trajs map[mod.OID]trajectory.Trajectory
	index *tindex.Tree
	tau   float64
}

// NewHistorian snapshots db and indexes the object lifetimes.
func NewHistorian(db *mod.DB) (*Historian, error) {
	trajs := db.Trajectories()
	ivs := make([]tindex.Interval, 0, len(trajs))
	for o, tr := range trajs {
		if !tr.IsDefined() {
			continue
		}
		ivs = append(ivs, tindex.Interval{Lo: tr.Start(), Hi: tr.End(), ID: uint64(o)})
	}
	idx, err := tindex.Build(ivs)
	if err != nil {
		return nil, fmt.Errorf("query: historian index: %w", err)
	}
	return &Historian{trajs: trajs, index: idx, tau: db.Tau()}, nil
}

// NumObjects returns the number of indexed objects.
func (h *Historian) NumObjects() int { return h.index.Len() }

// Tau returns the snapshot's last-update time; windows ending after it
// are not settled history (use Classify).
func (h *Historian) Tau() float64 { return h.tau }

// Relevant returns the objects whose lifetimes intersect [lo, hi].
func (h *Historian) Relevant(lo, hi float64) []mod.OID {
	ids := h.index.Overlap(lo, hi)
	out := make([]mod.OID, len(ids))
	for i, id := range ids {
		out[i] = mod.OID(id)
	}
	return out
}

// Run evaluates evaluators over [lo, hi], seeding the sweep from the
// index-selected objects only.
func (h *Historian) Run(f gdist.GDistance, lo, hi float64, evs ...Evaluator) (StatsResult, error) {
	e, err := NewEngine(EngineConfig{F: f, Lo: lo, Hi: hi})
	if err != nil {
		return StatsResult{}, err
	}
	for _, ev := range evs {
		if err := e.AddEvaluator(ev); err != nil {
			return StatsResult{}, err
		}
	}
	relevant := make(map[mod.OID]trajectory.Trajectory)
	for _, o := range h.Relevant(lo, hi) {
		relevant[o] = h.trajs[o]
	}
	if err := e.Seed(relevant); err != nil {
		return StatsResult{}, err
	}
	if err := e.Finish(); err != nil {
		return StatsResult{}, err
	}
	return StatsResult{Sweep: e.Sweeper().Stats(), Seeded: len(relevant)}, nil
}

// KNN is a convenience: a k-NN query over [lo, hi].
func (h *Historian) KNN(f gdist.GDistance, k int, lo, hi float64) (*AnswerSet, StatsResult, error) {
	knn := NewKNN(k)
	st, err := h.Run(f, lo, hi, knn)
	if err != nil {
		return nil, StatsResult{}, err
	}
	return knn.Answer(), st, nil
}

// StatsResult augments sweep stats with how many objects the index
// admitted into the sweep.
type StatsResult struct {
	Sweep  core.Stats
	Seeded int
}
