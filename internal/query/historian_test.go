package query

import (
	"math"
	"testing"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

func TestHistorianSeedsOnlyRelevantObjects(t *testing.T) {
	db := mod.NewDB(1, -1)
	// Three eras of objects.
	early := trajectory.Linear(0, geom.Of(0), geom.Of(1))
	earlyEnd, err := early.Terminate(10)
	must(t, err)
	must(t, db.Load(1, earlyEnd))
	mid := trajectory.Linear(20, geom.Of(0), geom.Of(2))
	midEnd, err := mid.Terminate(30)
	must(t, err)
	must(t, db.Load(2, midEnd))
	must(t, db.Load(3, trajectory.Linear(40, geom.Of(0), geom.Of(3)))) // open-ended

	h, err := NewHistorian(db)
	if err != nil {
		t.Fatal(err)
	}
	if h.NumObjects() != 3 {
		t.Fatalf("NumObjects = %d", h.NumObjects())
	}
	if got := h.Relevant(22, 28); len(got) != 1 || got[0] != 2 {
		t.Errorf("Relevant(22,28) = %v", got)
	}
	if got := h.Relevant(5, 45); len(got) != 3 {
		t.Errorf("Relevant(5,45) = %v", got)
	}
	ans, st, err := h.KNN(gdist.PointSq{Point: geom.Of(0)}, 1, 22, 28)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeded != 1 {
		t.Errorf("Seeded = %d, want 1 (index pruning)", st.Seeded)
	}
	if got := ans.At(25); len(got) != 1 || got[0] != 2 {
		t.Errorf("answer = %v", got)
	}
}

func TestHistorianMatchesRunPast(t *testing.T) {
	db := lineDB(t, []float64{1, 10, -4}, []float64{0, -1, 0.5})
	h, err := NewHistorian(db)
	if err != nil {
		t.Fatal(err)
	}
	hAns, _, err := h.KNN(originSq(), 1, 0, 12)
	if err != nil {
		t.Fatal(err)
	}
	knn := NewKNN(1)
	if _, err := RunPast(db, originSq(), 0, 12, knn); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0.3, 4.4, 8.8, 9.6, 11.7} {
		if !sameOIDs(hAns.At(tt), knn.Answer().At(tt)) {
			t.Errorf("t=%g: historian %v vs RunPast %v", tt, hAns.At(tt), knn.Answer().At(tt))
		}
	}
	if h.Tau() != db.Tau() {
		t.Errorf("Tau = %g vs %g", h.Tau(), db.Tau())
	}
	if math.IsNaN(h.Tau()) {
		t.Error("NaN tau")
	}
}
