package query

import (
	"errors"

	"repro/internal/core"
	"repro/internal/mod"
)

// KNN maintains the k-nearest-neighbors answer (Examples 6, 10, 12 of the
// paper): the set of objects whose g-distance curves are among the k
// lowest at each instant. Its FO(f) formula for k=1 is
//
//	phi(y, t) = forall z ( d(y,t) <= d(z,t) )
//
// and the general k version counts at most k-1 strictly-closer objects.
// The evaluator derives the set directly from the precedence relation: the
// first k object entries of the order. Each support change costs O(k).
type KNN struct {
	K int

	e   *Engine
	ans *AnswerSet
	cur map[mod.OID]bool
}

// NewKNN builds a k-NN evaluator.
func NewKNN(k int) *KNN { return &KNN{K: k} }

// Attach implements Evaluator.
func (q *KNN) Attach(e *Engine) error {
	if q.K <= 0 {
		return errors.New("query: KNN needs K >= 1")
	}
	if len(e.terms) != 1 || !isIdentity(e.terms[0]) {
		return errors.New("query: KNN requires the single identity time term")
	}
	q.e = e
	q.ans = NewAnswerSet()
	q.cur = make(map[mod.OID]bool)
	return nil
}

// firstK walks the order collecting the first K object entries (skipping
// constant curves registered by other evaluators).
func (q *KNN) firstK() []mod.OID {
	out := make([]mod.OID, 0, q.K)
	q.e.sw.Walk(func(id uint64) bool {
		if !IsConstID(id) {
			o, _ := UnpackObj(id)
			out = append(out, o)
		}
		return len(out) < q.K
	})
	return out
}

// OnChange implements Evaluator.
func (q *KNN) OnChange(c core.Change) {
	switch c.Kind {
	case core.ChangeEqual:
		// A meeting at the answer boundary grants the outside object a
		// point membership at the meeting instant (<= holds there even
		// for a tangency that never swaps).
		q.refresh(c.T)
		if IsConstID(c.A) || IsConstID(c.B) {
			return
		}
		oa, _ := UnpackObj(c.A)
		ob, _ := UnpackObj(c.B)
		if q.cur[oa] && !q.cur[ob] {
			q.ans.Point(ob, c.T)
		}
		if q.cur[ob] && !q.cur[oa] {
			q.ans.Point(oa, c.T)
		}
	default:
		q.refresh(c.T)
	}
}

// refresh reconciles the maintained answer with the current first-k set.
func (q *KNN) refresh(t float64) {
	now := q.firstK()
	inNow := make(map[mod.OID]bool, len(now))
	for _, o := range now {
		inNow[o] = true
		if !q.cur[o] {
			q.cur[o] = true
			q.ans.Enter(o, t)
		}
	}
	for o := range q.cur {
		if !inNow[o] {
			delete(q.cur, o)
			q.ans.Leave(o, t)
		}
	}
}

// Finish implements Evaluator.
func (q *KNN) Finish(t float64) { q.ans.Finish(t) }

// Answer returns the accumulated answer set.
func (q *KNN) Answer() *AnswerSet { return q.ans }

// Current returns the k-NN set at the current sweep time, in rank order
// (nearest first — the precedence order of the sweep).
func (q *KNN) Current() []mod.OID {
	if q.e == nil {
		return nil
	}
	return q.firstK()
}

// AppendCurrent appends the current k-NN set, in rank order, to dst and
// returns the extended slice — the allocation-free variant of Current
// for callers that diff answers on every update (pass dst[:0] to reuse
// the buffer; steady state allocates nothing once dst's capacity
// reaches K).
func (q *KNN) AppendCurrent(dst []mod.OID) []mod.OID {
	if q.e == nil {
		return dst
	}
	n := 0
	q.e.sw.Walk(func(id uint64) bool {
		if !IsConstID(id) {
			o, _ := UnpackObj(id)
			dst = append(dst, o)
			n++
		}
		return n < q.K
	})
	return dst
}
