package query

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

// lineDB builds a 1-D MOD with objects at given starting offsets and
// velocities, all created at time 0 (tau0 = -1 so creation at 0 is legal).
func lineDB(t *testing.T, offs, vels []float64) *mod.DB {
	t.Helper()
	db := mod.NewDB(1, -1)
	for i := range offs {
		tr := trajectory.Linear(0, geom.Of(vels[i]), geom.Of(offs[i]))
		if err := db.Load(mod.OID(i+1), tr); err != nil {
			t.Fatal(err)
		}
	}
	return db
}

// originSq is squared distance to the stationary origin.
func originSq() gdist.GDistance {
	return gdist.PointSq{Point: geom.Of(0)}
}

func TestKNNSimpleCrossover(t *testing.T) {
	// Object 1 sits at distance 1; object 2 starts at 10 moving toward
	// the origin at speed 1: d2 = (10-t)^2 < d1 = 1 when t > 9.
	db := lineDB(t, []float64{1, 10}, []float64{0, -1})
	knn := NewKNN(1)
	_, err := RunPast(db, originSq(), 0, 9.5, knn)
	if err != nil {
		t.Fatal(err)
	}
	ans := knn.Answer()
	iv1 := ans.Intervals(1)
	if len(iv1) != 1 || iv1[0].Lo != 0 || math.Abs(iv1[0].Hi-9) > 1e-7 {
		t.Errorf("o1 intervals %v, want [0,9]", iv1)
	}
	iv2 := ans.Intervals(2)
	if len(iv2) != 1 || math.Abs(iv2[0].Lo-9) > 1e-7 || math.Abs(iv2[0].Hi-9.5) > 1e-9 {
		t.Errorf("o2 intervals %v, want [9,9.5]", iv2)
	}
	// Answer modes.
	if got := ans.At(5); len(got) != 1 || got[0] != 1 {
		t.Errorf("At(5) = %v", got)
	}
	if got := ans.Existential(); len(got) != 2 {
		t.Errorf("Existential = %v", got)
	}
	if got := ans.Universal(0, 9.5); len(got) != 0 {
		t.Errorf("Universal = %v, want none", got)
	}
	if got := ans.Universal(0, 8); len(got) != 1 || got[0] != 1 {
		t.Errorf("Universal(0,8) = %v, want [o1]", got)
	}
}

func TestKNNWithObjectChurn(t *testing.T) {
	// Creations and terminations inside the window.
	db := mod.NewDB(1, -1)
	must(t, db.Apply(mod.New(1, 0, geom.Of(0), geom.Of(5))))
	must(t, db.Apply(mod.New(2, 3, geom.Of(0), geom.Of(2)))) // closer, appears at 3
	must(t, db.Apply(mod.Terminate(2, 6)))                   // disappears at 6
	knn := NewKNN(1)
	_, err := RunPast(db, originSq(), 0, 10, knn)
	if err != nil {
		t.Fatal(err)
	}
	ans := knn.Answer()
	iv1 := ans.Intervals(1)
	// o1 is 1-NN on [0,3] and [6,10].
	if len(iv1) != 2 {
		t.Fatalf("o1 intervals %v", iv1)
	}
	if math.Abs(iv1[0].Hi-3) > 1e-9 || math.Abs(iv1[1].Lo-6) > 1e-9 {
		t.Errorf("o1 intervals %v, want [0,3] [6,10]", iv1)
	}
	iv2 := ans.Intervals(2)
	if len(iv2) != 1 || math.Abs(iv2[0].Lo-3) > 1e-9 || math.Abs(iv2[0].Hi-6) > 1e-9 {
		t.Errorf("o2 intervals %v, want [3,6]", iv2)
	}
}

func TestWithinThreshold(t *testing.T) {
	// Object oscillates... linear in and out: d = (t-10)^2 <= 25 for
	// t in [5, 15].
	db := lineDB(t, []float64{-10}, []float64{1})
	w := NewWithin(25)
	_, err := RunPast(db, originSq(), 0, 20, w)
	if err != nil {
		t.Fatal(err)
	}
	iv := w.Answer().Intervals(1)
	if len(iv) != 1 || math.Abs(iv[0].Lo-5) > 1e-7 || math.Abs(iv[0].Hi-15) > 1e-7 {
		t.Errorf("intervals %v, want [5,15]", iv)
	}
}

func TestWithinTangency(t *testing.T) {
	// Closest approach exactly at the threshold: point membership.
	// d(t) = (t-5)^2 + 9 touches 9 at t=5.
	db := mod.NewDB(2, -1)
	must(t, db.Apply(mod.New(1, 0, geom.Of(1, 0), geom.Of(-5, 3))))
	w := NewWithin(9)
	_, err := RunPast(db, gdist.PointSq{Point: geom.Of(0, 0)}, 0, 10, w)
	if err != nil {
		t.Fatal(err)
	}
	iv := w.Answer().Intervals(1)
	if len(iv) != 1 || math.Abs(iv[0].Lo-5) > 1e-6 || math.Abs(iv[0].Hi-5) > 1e-6 {
		t.Errorf("intervals %v, want point [5,5]", iv)
	}
}

func TestFormulaOneNNMatchesKNN(t *testing.T) {
	// Example 10: phi(y,t) = forall z (d(y,t) <= d(z,t)).
	db := lineDB(t, []float64{1, 10, -4}, []float64{0, -1, 0.5})
	phi := ForAll{Var: "z", Body: Atom{L: F{Var: "y"}, Op: LE, R: F{Var: "z"}}}
	form := NewFormula("y", phi)
	knn := NewKNN(1)
	_, err := RunPast(db, originSq(), 0, 12, form, knn)
	if err != nil {
		t.Fatal(err)
	}
	if err := form.Err(); err != nil {
		t.Fatal(err)
	}
	// Compare membership at many sample instants.
	for _, tt := range []float64{0.5, 3.3, 6.1, 8.7, 9.4, 11.9} {
		a := form.Answer().At(tt)
		b := knn.Answer().At(tt)
		if !sameOIDs(a, b) {
			t.Errorf("t=%g: formula %v vs knn %v", tt, a, b)
		}
	}
}

func TestFormulaWithinConstant(t *testing.T) {
	db := lineDB(t, []float64{-10}, []float64{1})
	phi := Atom{L: F{Var: "y"}, Op: LE, R: C{Value: 25}}
	form := NewFormula("y", phi)
	w := NewWithin(25)
	_, err := RunPast(db, originSq(), 0, 20, form, w)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{1, 5.5, 10, 14.5, 19} {
		if !sameOIDs(form.Answer().At(tt), w.Answer().At(tt)) {
			t.Errorf("t=%g: formula %v vs within %v", tt, form.Answer().At(tt), w.Answer().At(tt))
		}
	}
}

func TestFormulaConnectives(t *testing.T) {
	// Objects between distance^2 25 and 100: AND of two atoms; also
	// exercise Or/Not/Implies/Exists and NE/GT/GE/LT/EQ operators.
	db := lineDB(t, []float64{-20}, []float64{1})
	band := And{
		X: Atom{L: F{Var: "y"}, Op: LE, R: C{Value: 100}},
		Y: Atom{L: F{Var: "y"}, Op: GE, R: C{Value: 25}},
	}
	form := NewFormula("y", band)
	if _, err := RunPast(db, originSq(), 0, 40, form); err != nil {
		t.Fatal(err)
	}
	// d = (t-20)^2: in [25,100] <=> |t-20| in [5,10] <=> t in [10,15] u [25,30].
	iv := form.Answer().Intervals(1)
	if len(iv) != 2 {
		t.Fatalf("intervals %v, want two bands", iv)
	}
	if math.Abs(iv[0].Lo-10) > 1e-6 || math.Abs(iv[0].Hi-15) > 1e-6 ||
		math.Abs(iv[1].Lo-25) > 1e-6 || math.Abs(iv[1].Hi-30) > 1e-6 {
		t.Errorf("bands %v", iv)
	}
	// Equivalent formulations agree at sample points.
	alt := Not{X: Or{
		X: Atom{L: F{Var: "y"}, Op: GT, R: C{Value: 100}},
		Y: Atom{L: F{Var: "y"}, Op: LT, R: C{Value: 25}},
	}}
	form2 := NewFormula("y", alt)
	if _, err := RunPast(db, originSq(), 0, 40, form2); err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{1, 12, 20, 27, 35} {
		if !sameOIDs(form.Answer().At(tt), form2.Answer().At(tt)) {
			t.Errorf("t=%g: %v vs %v", tt, form.Answer().At(tt), form2.Answer().At(tt))
		}
	}
}

func TestFormulaExistsImplies(t *testing.T) {
	// "y is within 4 of some other object": exists z (z != y by distance
	// inequality... we use: exists z (f(z) != f(y) and |comparison|)".
	// Simpler: exists z (f(z) < f(y)) — "y is not the nearest".
	db := lineDB(t, []float64{1, 10}, []float64{0, -1})
	phi := Exists{Var: "z", Body: Atom{L: F{Var: "z"}, Op: LT, R: F{Var: "y"}}}
	form := NewFormula("y", phi)
	if _, err := RunPast(db, originSq(), 0, 12, form); err != nil {
		t.Fatal(err)
	}
	// Exactly the complement of 1-NN (modulo tie instants).
	for _, tt := range []float64{2, 8, 9.5, 11.5} {
		got := form.Answer().At(tt)
		if len(got) != 1 {
			t.Errorf("t=%g: %v, want exactly one non-nearest", tt, got)
		}
	}
}

func TestSessionFutureQuery(t *testing.T) {
	// Future query: start with one object; a later new + chdir +
	// terminate reshape the 1-NN answer. Mirrors the paper's update
	// handling (Section 5).
	db := mod.NewDB(1, -1)
	must(t, db.Apply(mod.New(1, 0, geom.Of(0), geom.Of(5))))
	knn := NewKNN(1)
	sess, err := NewSession(db, originSq(), 0, 100, knn)
	if err != nil {
		t.Fatal(err)
	}
	// Wire live updates.
	db.OnUpdate(func(u mod.Update) {
		if err := sess.Apply(u); err != nil {
			t.Errorf("apply %v: %v", u, err)
		}
	})
	must(t, db.Apply(mod.New(2, 10, geom.Of(0), geom.Of(1)))) // closer from t=10
	must(t, db.Apply(mod.ChDir(2, 20, geom.Of(1))))           // o2 departs outward
	// o2: position 1 until 20, then 1 + (t-20): d2 passes d1=25 when
	// 1+(t-20) = 5 => t = 24.
	must(t, db.Apply(mod.Terminate(2, 40)))
	if err := sess.AdvanceTo(60); err != nil {
		t.Fatal(err)
	}
	_ = sess.Close()
	ans := knn.Answer()
	iv2 := ans.Intervals(2)
	if len(iv2) != 1 || math.Abs(iv2[0].Lo-10) > 1e-7 || math.Abs(iv2[0].Hi-24) > 1e-6 {
		t.Errorf("o2 intervals %v, want [10,24]", iv2)
	}
	iv1 := ans.Intervals(1)
	if len(iv1) != 2 || math.Abs(iv1[0].Hi-10) > 1e-7 || math.Abs(iv1[1].Lo-24) > 1e-6 {
		t.Errorf("o1 intervals %v, want [0,10] [24,60]", iv1)
	}
}

func TestSessionRejectsStaleUpdate(t *testing.T) {
	db := mod.NewDB(1, -1)
	must(t, db.Apply(mod.New(1, 0, geom.Of(0), geom.Of(5))))
	sess, err := NewSession(db, originSq(), 0, 100, NewKNN(1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AdvanceTo(50); err != nil {
		t.Fatal(err)
	}
	if err := sess.Apply(mod.New(2, 30, geom.Of(0), geom.Of(1))); err == nil {
		t.Error("stale update accepted")
	}
	if err := sess.Apply(mod.New(2, 300, geom.Of(0), geom.Of(1))); err == nil {
		t.Error("update beyond window accepted")
	}
}

func TestReplaceGDistanceTheorem10(t *testing.T) {
	// 1-NN to a moving query object; mid-sweep the query object turns
	// (chdir on the query trajectory): all curves change, the current
	// order stays valid, answers follow the new geometry.
	db := mod.NewDB(1, -1)
	must(t, db.Apply(mod.New(1, 0, geom.Of(0), geom.Of(0)))) // at origin
	must(t, db.Apply(mod.New(2, 0.5, geom.Of(0), geom.Of(100))))
	qtraj := trajectory.Linear(0, geom.Of(1), geom.Of(10)) // moving away from o1... toward +
	knn := NewKNN(1)
	sess, err := NewSession(db, gdist.EuclideanSq{Query: qtraj}, 1, 200, knn)
	if err != nil {
		t.Fatal(err)
	}
	// Query at 10+t: d(o1) = (10+t)^2, d(o2) = (90-t)^2: o1 nearest
	// until 10+t = 90-t => t = 40.
	if err := sess.AdvanceTo(20); err != nil {
		t.Fatal(err)
	}
	if cur := knn.Current(); len(cur) != 1 || cur[0] != 1 {
		t.Fatalf("current 1-NN %v, want o1", cur)
	}
	// At t=20, query turns around (heads back toward o1 at origin):
	// o1 stays nearest forever; the crossing at 40 must be cancelled.
	turned, err := qtraj.ChDir(20, geom.Of(-1))
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.E.ReplaceGDistance(gdist.EuclideanSq{Query: turned}); err != nil {
		t.Fatal(err)
	}
	if err := sess.AdvanceTo(200); err != nil {
		t.Fatal(err)
	}
	_ = sess.Close()
	iv2 := knn.Answer().Intervals(2)
	if len(iv2) != 0 {
		t.Errorf("o2 intervals %v, want none (turnaround cancelled the handover)", iv2)
	}
}

// TestRandomizedKNNAgainstBruteForce cross-checks the full pipeline
// (trajectories -> curves -> sweep -> evaluator) against direct geometric
// computation at random sample times.
func TestRandomizedKNNAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(2024))
	for trial := 0; trial < 15; trial++ {
		n := 4 + rng.Intn(12)
		k := 1 + rng.Intn(3)
		db := mod.NewDB(2, -1)
		for i := 1; i <= n; i++ {
			pos := geom.Of(rng.Float64()*200-100, rng.Float64()*200-100)
			vel := geom.Of(rng.Float64()*10-5, rng.Float64()*10-5)
			must(t, db.Load(mod.OID(i), trajectory.Linear(0, vel, pos)))
		}
		// A few chdir turns recorded in history (past query: final data);
		// update times must be chronological.
		taus := make([]float64, n/2)
		for i := range taus {
			taus[i] = 1 + rng.Float64()*48
		}
		sort.Float64s(taus)
		for _, tau := range taus {
			o := mod.OID(1 + rng.Intn(n))
			_ = db.Apply(mod.ChDir(o, tau, geom.Of(rng.Float64()*10-5, rng.Float64()*10-5)))
		}
		qtraj := trajectory.Linear(0, geom.Of(rng.Float64()*4-2, rng.Float64()*4-2), geom.Of(0, 0))
		knn := NewKNN(k)
		if _, err := RunPast(db, gdist.EuclideanSq{Query: qtraj}, 0, 50, knn); err != nil {
			t.Fatal(err)
		}
		ans := knn.Answer()
		for probe := 0; probe < 25; probe++ {
			tt := rng.Float64() * 50
			want := bruteKNN(db, qtraj, k, tt)
			got := ans.At(tt)
			if !sameOIDs(got, want) {
				t.Fatalf("trial %d t=%g: sweep %v vs brute %v", trial, tt, got, want)
			}
		}
	}
}

// bruteKNN computes the k nearest objects to the query trajectory at time
// tt directly from the trajectories.
func bruteKNN(db *mod.DB, q trajectory.Trajectory, k int, tt float64) []mod.OID {
	type od struct {
		o mod.OID
		d float64
	}
	var ds []od
	qpos := q.MustAt(tt)
	for o, tr := range db.Trajectories() {
		if !tr.DefinedAt(tt) {
			continue
		}
		ds = append(ds, od{o, tr.MustAt(tt).Dist2(qpos)})
	}
	sort.Slice(ds, func(i, j int) bool {
		if ds[i].d != ds[j].d {
			return ds[i].d < ds[j].d
		}
		return ds[i].o < ds[j].o
	})
	if len(ds) > k {
		ds = ds[:k]
	}
	out := make([]mod.OID, len(ds))
	for i, x := range ds {
		out[i] = x.o
	}
	sortOIDs(out)
	return out
}

// TestRandomizedWithinAgainstBruteForce does the same for thresholds.
func TestRandomizedWithinAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 10; trial++ {
		n := 3 + rng.Intn(10)
		db := mod.NewDB(2, -1)
		for i := 1; i <= n; i++ {
			pos := geom.Of(rng.Float64()*100-50, rng.Float64()*100-50)
			vel := geom.Of(rng.Float64()*6-3, rng.Float64()*6-3)
			must(t, db.Load(mod.OID(i), trajectory.Linear(0, vel, pos)))
		}
		c := 100 + rng.Float64()*900
		w := NewWithin(c)
		if _, err := RunPast(db, gdist.PointSq{Point: geom.Of(0, 0)}, 0, 40, w); err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 25; probe++ {
			tt := rng.Float64() * 40
			var want []mod.OID
			for o, tr := range db.Trajectories() {
				if tr.MustAt(tt).Len2() <= c {
					want = append(want, o)
				}
			}
			sortOIDs(want)
			got := w.Answer().At(tt)
			if !sameOIDs(got, want) {
				t.Fatalf("trial %d t=%g c=%g: %v vs brute %v", trial, tt, c, got, want)
			}
		}
	}
}

func TestEngineErrors(t *testing.T) {
	if _, err := NewEngine(EngineConfig{}); err == nil {
		t.Error("nil g-distance accepted")
	}
	if _, err := NewEngine(EngineConfig{F: originSq(), Lo: 5, Hi: 2}); err == nil {
		t.Error("inverted window accepted")
	}
	e, err := NewEngine(EngineConfig{F: originSq(), Lo: 0, Hi: 10})
	if err != nil {
		t.Fatal(err)
	}
	if err := e.ApplyUpdate(mod.Terminate(9, 5)); err == nil {
		t.Error("terminate of unknown object accepted")
	}
	if err := e.ApplyUpdate(mod.ChDir(9, 6, geom.Of(1))); err == nil {
		t.Error("chdir of unknown object accepted")
	}
	if err := e.RunTo(20); err == nil {
		t.Error("RunTo beyond window accepted")
	}
	// Evaluator validation.
	if err := e.AddEvaluator(NewKNN(0)); err == nil {
		t.Error("KNN k=0 accepted")
	}
	if err := e.AddEvaluator(NewFormula("", nil)); err == nil {
		t.Error("empty formula accepted")
	}
}

func TestAnswerSetMergesContiguous(t *testing.T) {
	r := NewAnswerSet()
	r.Enter(1, 0)
	r.Leave(1, 5)
	r.Enter(1, 5)
	r.Leave(1, 9)
	r.Finish(10)
	iv := r.Intervals(1)
	if len(iv) != 1 || iv[0].Lo != 0 || iv[0].Hi != 9 {
		t.Errorf("intervals %v, want merged [0,9]", iv)
	}
	if r.Member(1) {
		t.Error("member after leave")
	}
	if s := r.String(); s == "" {
		t.Error("String")
	}
}

func sameOIDs(a, b []mod.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func must(t *testing.T, err error) {
	t.Helper()
	if err != nil {
		t.Fatal(err)
	}
}
