package query

import (
	"errors"
	"sort"

	"repro/internal/core"
	"repro/internal/mod"
)

// RankTracker records the full rank timeline of one object under the
// engine's g-distance: at every instant, how many live objects are
// strictly nearer. Rank changes are a by-product of the precedence
// relation the sweep maintains, so each support change costs O(log N)
// (one rank query) and the output is a step function over time.
type RankTracker struct {
	// O is the tracked object.
	O mod.OID

	e     *Engine
	steps []RankStep
	cur   int
}

// RankStep is one plateau of the rank timeline: the object held Rank
// from T until the next step (or the window end). Rank -1 means the
// object was absent (not yet created, terminated, or expired).
type RankStep struct {
	T    float64
	Rank int
}

// NewRankTracker builds a tracker for object o.
func NewRankTracker(o mod.OID) *RankTracker { return &RankTracker{O: o} }

// Attach implements Evaluator.
func (rt *RankTracker) Attach(e *Engine) error {
	if len(e.terms) != 1 || !isIdentity(e.terms[0]) {
		return errors.New("query: RankTracker requires the single identity time term")
	}
	rt.e = e
	rt.cur = -2 // sentinel: no step emitted yet
	return nil
}

// rankNow computes the tracked object's current rank among objects
// (constant curves excluded), or -1 when absent.
func (rt *RankTracker) rankNow() int {
	id := packObj(rt.O, 0)
	if !rt.e.sw.Contains(id) {
		return -1
	}
	// Count object entries strictly before the tracked one, skipping
	// constant curves other evaluators may have registered.
	rank := 0
	rt.e.sw.Walk(func(x uint64) bool {
		if x == id {
			return false
		}
		if !IsConstID(x) {
			rank++
		}
		return true
	})
	return rank
}

// OnChange implements Evaluator.
func (rt *RankTracker) OnChange(c core.Change) {
	// Only changes touching the tracked object or the population can
	// move its rank; recomputing on every change keeps it simple and
	// still O(rank) per event via the walk.
	r := rt.rankNow()
	if r == rt.cur {
		return
	}
	rt.cur = r
	// Same-instant churn (e.g. the initial seeding inserts) collapses to
	// the final rank at that instant.
	if n := len(rt.steps); n > 0 && rt.steps[n-1].T == c.T { //modlint:allow floatcmp -- same-instant events carry the identical stored timestamp
		rt.steps[n-1].Rank = r
		// Collapsing may recreate the previous plateau; merge it away.
		if n > 1 && rt.steps[n-2].Rank == r {
			rt.steps = rt.steps[:n-1]
		}
		return
	}
	rt.steps = append(rt.steps, RankStep{T: c.T, Rank: r})
}

// Finish implements Evaluator.
func (rt *RankTracker) Finish(t float64) {
	if len(rt.steps) == 0 {
		rt.steps = append(rt.steps, RankStep{T: t, Rank: rt.rankNow()})
	}
}

// Steps returns the rank timeline in time order (consecutive duplicates
// merged).
func (rt *RankTracker) Steps() []RankStep {
	out := make([]RankStep, len(rt.steps))
	copy(out, rt.steps)
	return out
}

// RankAt returns the rank in force at time t (-1 before the first step).
func (rt *RankTracker) RankAt(t float64) int {
	i := sort.Search(len(rt.steps), func(i int) bool { return rt.steps[i].T > t })
	if i == 0 {
		return -1
	}
	return rt.steps[i-1].Rank
}

// Best returns the best (lowest nonnegative) rank ever held and its
// first time; ok is false if the object never appeared.
func (rt *RankTracker) Best() (rank int, at float64, ok bool) {
	best := -1
	var t float64
	for _, s := range rt.steps {
		if s.Rank < 0 {
			continue
		}
		if best < 0 || s.Rank < best {
			best, t = s.Rank, s.T
		}
	}
	return best, t, best >= 0
}
