package query

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

func TestRankTrackerTimeline(t *testing.T) {
	// o3 starts farthest (rank 2), overtakes o2 then o1.
	db := lineDB(t, []float64{1, 5, 20}, []float64{0, 0, -1})
	rt := NewRankTracker(3)
	if _, err := RunPast(db, originSq(), 0, 25, rt); err != nil {
		t.Fatal(err)
	}
	// d3 = (20-t)^2: passes d2=25 when 20-t<5 => t=15; passes d1=1 at t=19.
	if got := rt.RankAt(10); got != 2 {
		t.Errorf("RankAt(10) = %d, want 2", got)
	}
	if got := rt.RankAt(17); got != 1 {
		t.Errorf("RankAt(17) = %d, want 1", got)
	}
	if got := rt.RankAt(20); got != 0 {
		t.Errorf("RankAt(20) = %d, want 0", got)
	}
	// It passes through the origin and recedes: loses rank 0 at t=21,
	// rank 1 at t=25.
	best, at, ok := rt.Best()
	if !ok || best != 0 || at < 18.9 || at > 19.1 {
		t.Errorf("Best = %d at %g ok=%v", best, at, ok)
	}
	if got := rt.RankAt(-5); got != -1 {
		t.Errorf("RankAt before window = %d", got)
	}
}

func TestRankTrackerAbsence(t *testing.T) {
	db := mod.NewDB(1, -1)
	must(t, db.Load(1, trajectory.Stationary(0, geom.Of(5))))
	// Tracked object exists only during [10, 20].
	short := trajectory.Linear(10, geom.Of(0), geom.Of(1))
	ended, err := short.Terminate(20)
	must(t, err)
	must(t, db.Load(2, ended))
	rt := NewRankTracker(2)
	if _, err := RunPast(db, originSq(), 0, 30, rt); err != nil {
		t.Fatal(err)
	}
	if got := rt.RankAt(5); got != -1 {
		t.Errorf("RankAt(5) = %d, want absent", got)
	}
	if got := rt.RankAt(15); got != 0 {
		t.Errorf("RankAt(15) = %d, want 0 (closest)", got)
	}
	if got := rt.RankAt(25); got != -1 {
		t.Errorf("RankAt(25) = %d, want absent after termination", got)
	}
	steps := rt.Steps()
	if len(steps) < 3 {
		t.Errorf("steps = %v", steps)
	}
}

func TestRankTrackerWithConstants(t *testing.T) {
	// A Within evaluator adds a constant curve; ranks must skip it.
	db := lineDB(t, []float64{1, 5}, []float64{0, 0})
	rt := NewRankTracker(2)
	w := NewWithin(9) // constant curve 9 sits between d1=1 and d2=25
	if _, err := RunPast(db, originSq(), 0, 10, rt, w); err != nil {
		t.Fatal(err)
	}
	if got := rt.RankAt(5); got != 1 {
		t.Errorf("RankAt = %d, want 1 (constants skipped)", got)
	}
}
