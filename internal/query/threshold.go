package query

import (
	"errors"
	"fmt"

	"repro/internal/core"
	"repro/internal/mod"
	"repro/internal/piecewise"
)

// Within maintains the answer of the threshold query f(y, t) <= C —
// the paper's "all flights within 50 km of Flight 623" (Example 11). The
// constant is materialized as a stationary curve in the sweep order, so
// threshold crossings are ordinary intersection events; membership of an
// object changes only at events involving the constant curve (Lemma 8).
type Within struct {
	C float64

	e       *Engine
	ans     *AnswerSet
	constID uint64
	cur     map[mod.OID]bool
}

// NewWithin builds a threshold evaluator for f(y,t) <= c.
func NewWithin(c float64) *Within { return &Within{C: c} }

// Attach implements Evaluator.
func (q *Within) Attach(e *Engine) error {
	if len(e.terms) != 1 || !isIdentity(e.terms[0]) {
		return errors.New("query: Within requires the single identity time term")
	}
	q.e = e
	q.ans = NewAnswerSet()
	q.cur = make(map[mod.OID]bool)
	id, err := e.ConstID(q.C)
	if err != nil {
		return fmt.Errorf("query: Within constant: %w", err)
	}
	q.constID = id
	return nil
}

// memberAfter decides membership of object id on (t, t+delta): its curve
// is below (or coinciding with) the constant.
func (q *Within) memberAfter(id uint64, t float64) bool {
	fo, ok := q.e.sw.Curve(id)
	if !ok {
		return false
	}
	fc, _ := q.e.sw.Curve(q.constID)
	switch piecewise.SignDiffAfter(fo, fc, t) {
	case -1:
		return true
	case 0:
		return true // coinciding with the threshold: <= holds
	default:
		return false
	}
}

// setMembership reconciles one object's membership at time t.
func (q *Within) setMembership(o mod.OID, member bool, t float64) {
	switch {
	case member && !q.cur[o]:
		q.cur[o] = true
		q.ans.Enter(o, t)
	case !member && q.cur[o]:
		delete(q.cur, o)
		q.ans.Leave(o, t)
	}
}

// OnChange implements Evaluator.
func (q *Within) OnChange(c core.Change) {
	switch c.Kind {
	case core.ChangeInsert:
		if IsConstID(c.A) {
			return
		}
		o, term := UnpackObj(c.A)
		if term != 0 {
			return
		}
		q.setMembership(o, q.memberAfter(c.A, c.T), c.T)
	case core.ChangeRemove, core.ChangeExpire:
		if IsConstID(c.A) {
			return
		}
		o, term := UnpackObj(c.A)
		if term != 0 {
			return
		}
		q.setMembership(o, false, c.T)
	case core.ChangeEqual, core.ChangeSwap, core.ChangeSeparate:
		// Only events involving the constant can change membership.
		var objID uint64
		switch {
		case c.A == q.constID:
			objID = c.B
		case c.B == q.constID:
			objID = c.A
		default:
			return
		}
		if IsConstID(objID) {
			return
		}
		o, term := UnpackObj(objID)
		if term != 0 {
			return
		}
		member := q.memberAfter(objID, c.T)
		if c.Kind == core.ChangeEqual && !member && !q.cur[o] {
			// Tangency from above: <= holds exactly at the instant.
			q.ans.Point(o, c.T)
			return
		}
		q.setMembership(o, member, c.T)
	case core.ChangeReplace:
		// A chdir preserves the value at the replacement instant, so
		// membership is unchanged; future changes arrive as events.
	}
}

// Finish implements Evaluator.
func (q *Within) Finish(t float64) { q.ans.Finish(t) }

// Answer returns the accumulated answer set.
func (q *Within) Answer() *AnswerSet { return q.ans }

// Current returns the objects currently within the threshold, ascending.
func (q *Within) Current() []mod.OID {
	out := make([]mod.OID, 0, len(q.cur))
	for o := range q.cur {
		out = append(out, o)
	}
	sortOIDs(out)
	return out
}

// AppendCurrent appends the current answer set, ascending, to dst and
// returns the extended slice — the allocation-free variant of Current
// (pass dst[:0] to reuse the buffer across updates).
func (q *Within) AppendCurrent(dst []mod.OID) []mod.OID {
	base := len(dst)
	for o := range q.cur {
		dst = append(dst, o)
	}
	sortOIDs(dst[base:])
	return dst
}

// sortOIDs sorts ascending (tiny helper shared by evaluators).
func sortOIDs(os []mod.OID) {
	for i := 1; i < len(os); i++ {
		for j := i; j > 0 && os[j] < os[j-1]; j-- {
			os[j], os[j-1] = os[j-1], os[j]
		}
	}
}
