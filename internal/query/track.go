package query

import (
	"errors"
	"fmt"

	"repro/internal/gdist"
	"repro/internal/mod"
)

// TrackSession is the paper's Section 5 closing extension: a continuing
// query whose query object IS one of the database's moving objects. While
// ordinary updates flow through the usual per-object handling, a chdir on
// the tracked object changes every g-distance at once — and, as the paper
// observes, the current precedence relation remains correct, so the
// session rebuilds all curves in O(N) without re-sorting (Theorem 10).
type TrackSession struct {
	*Session
	// Target is the tracked query object.
	Target mod.OID

	mk func(tr targetTrajectory) gdist.GDistance
}

// targetTrajectory aliases the trajectory type without widening imports.
type targetTrajectory = trajectoryT

// NewTrackKNNSession starts a continuing k-NN query whose query object is
// the database object target. The target itself participates as the
// closest object (distance 0); ask for k+1 neighbors to see k others, or
// filter the answer.
func NewTrackKNNSession(db *mod.DB, target mod.OID, k int, lo, hi float64) (*TrackSession, *KNN, error) {
	tr, err := db.Traj(target)
	if err != nil {
		return nil, nil, fmt.Errorf("query: track target: %w", err)
	}
	if !tr.DefinedAt(lo) {
		return nil, nil, fmt.Errorf("query: target %s not live at window start %g", target, lo)
	}
	mk := func(tr targetTrajectory) gdist.GDistance { return gdist.EuclideanSq{Query: tr} }
	knn := NewKNN(k)
	sess, err := NewSession(db, mk(tr), lo, hi, knn)
	if err != nil {
		return nil, nil, err
	}
	return &TrackSession{Session: sess, Target: target, mk: mk}, knn, nil
}

// Apply ingests one update. Updates to the tracked object are split into
// their two roles: the object's own curve changes like any other
// object's, and — because the object is also the query — every other
// curve is rebuilt via the O(N) Theorem 10 path.
func (ts *TrackSession) Apply(u mod.Update) error {
	if u.O != ts.Target {
		return ts.Session.Apply(u)
	}
	switch u.Kind {
	case mod.KindChDir:
		// First let the engine update the target's own trajectory and
		// curve (chronology, event processing up to u.Tau)...
		if err := ts.Session.Apply(u); err != nil {
			return err
		}
		// ...then retarget every curve to the target's new motion. The
		// g-distances coincide at u.Tau (the trajectory is continuous),
		// so the precedence relation stays valid.
		nt, ok := ts.E.Traj(ts.Target)
		if !ok {
			return fmt.Errorf("query: tracked object %s vanished", ts.Target)
		}
		return ts.E.ReplaceGDistance(ts.mk(nt))
	case mod.KindTerminate:
		return errors.New("query: cannot terminate the tracked query object mid-watch")
	default:
		return fmt.Errorf("query: unsupported update %v on tracked object", u.Kind)
	}
}
