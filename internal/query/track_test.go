package query

import (
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

func TestTrackSessionFollowsTargetTurns(t *testing.T) {
	db := mod.NewDB(2, -1)
	// Target o1 moves right from the origin; o2 parked ahead at (20,0);
	// o3 parked behind at (-4,0).
	must(t, db.Load(1, trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))))
	must(t, db.Load(2, trajectory.Stationary(0, geom.Of(20, 0))))
	must(t, db.Load(3, trajectory.Stationary(0, geom.Of(-4, 0))))

	ts, knn, err := NewTrackKNNSession(db, 1, 2, 0, 200)
	if err != nil {
		t.Fatal(err)
	}
	db.OnUpdate(func(u mod.Update) {
		if err := ts.Apply(u); err != nil {
			t.Errorf("apply %v: %v", u, err)
		}
	})
	// At t=6 the target is at (6,0): o3 (dist 10) still closer than o2
	// (dist 14). Answer = [target, o3].
	must(t, ts.AdvanceTo(6))
	if cur := knn.Current(); len(cur) != 2 || cur[0] != 1 || cur[1] != 3 {
		t.Fatalf("at 6: %v, want [o1 o3]", cur)
	}
	// Without any turn, o2 takes over when dist(target,o2) < dist(target,o3):
	// 20-t < t+4 => t > 8.
	must(t, ts.AdvanceTo(10))
	if cur := knn.Current(); cur[1] != 2 {
		t.Fatalf("at 10: %v, want o2 second", cur)
	}
	// The TARGET turns around at t=12 (position (12,0)), heading back:
	// the handover must reverse at 12 + small: dist to o2 grows again,
	// o3 retakes when 12-... pos = 12-(t-12): dist3 = pos+4 = 28-t,
	// dist2 = 20-pos = t-4... wait dist2 = 20-(24-t) = t-4; equal when
	// 28-t = t-4 => t = 16.
	must(t, db.Apply(mod.ChDir(1, 12, geom.Of(-1, 0))))
	must(t, ts.AdvanceTo(14))
	if cur := knn.Current(); cur[1] != 2 {
		t.Fatalf("at 14: %v, want o2 still second", cur)
	}
	must(t, ts.AdvanceTo(17))
	if cur := knn.Current(); cur[1] != 3 {
		t.Fatalf("at 17: %v, want o3 again after the target's turn", cur)
	}
	must(t, ts.Close())
	// Answer history for o3 shows the gap [8, 16].
	iv3 := knn.Answer().Intervals(3)
	if len(iv3) != 2 {
		t.Fatalf("o3 intervals %v", iv3)
	}
	if iv3[0].Hi < 7.9 || iv3[0].Hi > 8.1 || iv3[1].Lo < 15.9 || iv3[1].Lo > 16.1 {
		t.Errorf("o3 intervals %v, want [..,8] [16,..]", iv3)
	}
}

func TestTrackSessionValidation(t *testing.T) {
	db := mod.NewDB(2, -1)
	must(t, db.Load(1, trajectory.Linear(0, geom.Of(1, 0), geom.Of(0, 0))))
	if _, _, err := NewTrackKNNSession(db, 9, 1, 0, 10); err == nil {
		t.Error("missing target accepted")
	}
	late := trajectory.Linear(50, geom.Of(1, 0), geom.Of(0, 0))
	must(t, db.Load(2, late))
	if _, _, err := NewTrackKNNSession(db, 2, 1, 0, 10); err == nil {
		t.Error("target not live at window start accepted")
	}
	ts, _, err := NewTrackKNNSession(db, 1, 1, 0, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := ts.Apply(mod.Terminate(1, 5)); err == nil {
		t.Error("terminating the tracked object accepted")
	}
	if err := ts.Apply(mod.Update{Kind: mod.KindNew, O: 1, Tau: 6}); err == nil {
		t.Error("re-creating the tracked object accepted")
	}
}

// TestTrackSessionMatchesOracle replays the tracked session against
// brute-force geometry after the fact.
func TestTrackSessionMatchesOracle(t *testing.T) {
	db := mod.NewDB(2, -1)
	must(t, db.Load(1, trajectory.Linear(0, geom.Of(2, 1), geom.Of(0, 0))))
	for i := mod.OID(2); i <= 8; i++ {
		must(t, db.Load(i, trajectory.Linear(0,
			geom.Of(float64(i%3)-1, float64(i%4)-2),
			geom.Of(float64(i)*13-50, 40-float64(i)*9))))
	}
	ts, knn, err := NewTrackKNNSession(db, 1, 3, 0, 50)
	if err != nil {
		t.Fatal(err)
	}
	db.OnUpdate(func(u mod.Update) { must(t, ts.Apply(u)) })
	must(t, db.Apply(mod.ChDir(1, 15, geom.Of(-1, 0))))
	must(t, db.Apply(mod.ChDir(1, 30, geom.Of(0, -2))))
	must(t, ts.AdvanceTo(50))
	must(t, ts.Close())
	// Oracle: final recorded trajectories.
	for _, tt := range []float64{3.3, 14.9, 15.1, 22.2, 29.9, 30.1, 44.4} {
		q, _ := db.Traj(1)
		want := bruteKNN(db, q, 3, tt)
		got := knn.Answer().At(tt)
		if !sameOIDs(got, want) {
			t.Fatalf("t=%g: tracked %v vs oracle %v", tt, got, want)
		}
	}
}
