package rtree

// Property test: STR bulk loading and one-at-a-time insertion must be
// two constructions of the SAME search structure, as observed through
// every query API. The trees differ internally (packing vs split
// heuristics), so the equivalence is over results: on random workloads,
// range/radius/rect searches and their append/visitor variants return
// identical item sets in identical (ID) order. This is the contract the
// uncertainty broad phase (internal/query) leans on when it STR-builds
// at first sync and inserts incrementally afterwards.

import (
	"fmt"
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func eqRandVec(rng *rand.Rand, dim int, scale float64) geom.Vec {
	v := make(geom.Vec, dim)
	for i := range v {
		v[i] = scale * (rng.Float64() - 0.5)
	}
	return v
}

func eqRandRect(rng *rand.Rand, dim int, scale float64) Rect {
	lo := eqRandVec(rng, dim, scale)
	hi := lo.Clone()
	for i := range hi {
		hi[i] += scale * 0.3 * rng.Float64()
	}
	return Rect{Min: lo, Max: hi}
}

func TestBulkVsInsertSearchEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(9000 + trial)))
		dim := 2 + rng.Intn(2)
		n := rng.Intn(400)
		items := make([]Item, n)
		for i := range items {
			items[i] = Item{ID: uint64(i + 1), P: eqRandVec(rng, dim, 100)}
		}
		bulk, err := Bulk(items, dim, DefaultFanout)
		if err != nil {
			t.Fatalf("trial %d: Bulk: %v", trial, err)
		}
		inc := New(dim, DefaultFanout)
		for _, it := range items {
			if err := inc.Insert(it); err != nil {
				t.Fatalf("trial %d: Insert: %v", trial, err)
			}
		}
		if bulk.Len() != n || inc.Len() != n {
			t.Fatalf("trial %d: Len %d/%d, want %d", trial, bulk.Len(), inc.Len(), n)
		}
		for q := 0; q < 25; q++ {
			r := eqRandRect(rng, dim, 120)
			br := bulk.SearchRange(r)
			ir := inc.SearchRange(r)
			if fmt.Sprint(br) != fmt.Sprint(ir) {
				t.Fatalf("trial %d query %d: SearchRange diverges:\nbulk %v\ninc  %v", trial, q, br, ir)
			}
			// The append variant must agree with the allocating one and
			// respect pre-existing slice contents.
			pre := []Item{{ID: 777}}
			ba := bulk.SearchRangeAppend(r, pre)
			if len(ba) != 1+len(br) || ba[0].ID != 777 || fmt.Sprint(ba[1:]) != fmt.Sprint(br) {
				t.Fatalf("trial %d query %d: SearchRangeAppend mismatch", trial, q)
			}
			visited := 0
			bulk.VisitRange(r, func(Item) bool { visited++; return true })
			if visited != len(br) {
				t.Fatalf("trial %d query %d: VisitRange saw %d, SearchRange %d", trial, q, visited, len(br))
			}

			c := eqRandVec(rng, dim, 120)
			rad := 5 + 40*rng.Float64()
			bs := bulk.SearchRadius(c, rad)
			is := inc.SearchRadius(c, rad)
			if fmt.Sprint(bs) != fmt.Sprint(is) {
				t.Fatalf("trial %d query %d: SearchRadius diverges", trial, q)
			}
			visited = 0
			inc.VisitRadius(c, rad, func(Item) bool { visited++; return true })
			if visited != len(is) {
				t.Fatalf("trial %d query %d: VisitRadius saw %d, SearchRadius %d", trial, q, visited, len(is))
			}
		}
	}
}

func TestBulkVsInsertRectSearchEquivalence(t *testing.T) {
	for trial := 0; trial < 40; trial++ {
		rng := rand.New(rand.NewSource(int64(9500 + trial)))
		dim := 2 + rng.Intn(2)
		n := rng.Intn(300)
		items := make([]RectItem, n)
		for i := range items {
			items[i] = RectItem{ID: uint64(i + 1), R: eqRandRect(rng, dim, 100)}
		}
		bulk, err := BulkRects(items, dim, DefaultFanout)
		if err != nil {
			t.Fatalf("trial %d: BulkRects: %v", trial, err)
		}
		inc := NewRectTree(dim, DefaultFanout)
		for _, it := range items {
			if err := inc.Insert(it); err != nil {
				t.Fatalf("trial %d: Insert: %v", trial, err)
			}
		}
		for q := 0; q < 25; q++ {
			r := eqRandRect(rng, dim, 120)
			br := bulk.SearchRect(r)
			ir := inc.SearchRect(r)
			if fmt.Sprint(br) != fmt.Sprint(ir) {
				t.Fatalf("trial %d query %d: SearchRect diverges:\nbulk %v\ninc  %v", trial, q, br, ir)
			}
			visited := 0
			bulk.VisitRect(r, func(RectItem) bool { visited++; return true })
			if visited != len(br) {
				t.Fatalf("trial %d query %d: VisitRect saw %d, SearchRect %d", trial, q, visited, len(br))
			}
			// Early stop: the visitor must halt after the first match.
			if len(br) > 1 {
				visited = 0
				bulk.VisitRect(r, func(RectItem) bool { visited++; return false })
				if visited != 1 {
					t.Fatalf("trial %d query %d: early-stop visit saw %d items", trial, q, visited)
				}
			}

			a, b := eqRandVec(rng, dim, 120), eqRandVec(rng, dim, 120)
			if fmt.Sprint(bulk.SearchSegment(a, b)) != fmt.Sprint(inc.SearchSegment(a, b)) {
				t.Fatalf("trial %d query %d: SearchSegment diverges", trial, q)
			}
		}
	}
}
