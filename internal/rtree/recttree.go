package rtree

// RectTree is an R-tree over axis-aligned boxes — the substrate of the
// subscription interest index (internal/sub): each entry is the bounding
// box of one subscription's candidate ball, and the query shape is a
// motion segment (where an updated object can travel inside its new
// linear piece). Same STR bulk loading and linear-split insertion as the
// point Tree; deletions are handled by the caller with tombstones and a
// periodic rebuild, which keeps this structure append-only and simple.

import (
	"fmt"
	"slices"
	"sort"

	"repro/internal/geom"
)

// RectItem is one box entry.
type RectItem struct {
	ID uint64
	R  Rect
}

type rnode struct {
	rect     Rect
	leaf     bool
	items    []RectItem
	children []*rnode
}

// RectTree is the box R-tree. Not safe for concurrent mutation.
type RectTree struct {
	root *rnode
	dim  int
	max  int
	n    int
}

// NewRectTree returns an empty tree for boxes of the given dimension.
func NewRectTree(dim, fanout int) *RectTree {
	if fanout < 4 {
		fanout = DefaultFanout
	}
	return &RectTree{dim: dim, max: fanout, root: &rnode{leaf: true}}
}

// Len returns the number of stored boxes.
func (t *RectTree) Len() int { return t.n }

// BulkRects builds a tree by STR packing over the boxes' min corners.
func BulkRects(items []RectItem, dim, fanout int) (*RectTree, error) {
	t := NewRectTree(dim, fanout)
	for _, it := range items {
		if it.R.Min.Dim() != dim || it.R.Max.Dim() != dim {
			return nil, fmt.Errorf("rtree: rect item %d has dim %d/%d, want %d",
				it.ID, it.R.Min.Dim(), it.R.Max.Dim(), dim)
		}
	}
	if len(items) == 0 {
		return t, nil
	}
	cp := make([]RectItem, len(items))
	copy(cp, items)
	leaves := strPackRects(cp, dim, t.max)
	t.n = len(items)
	level := leaves
	for len(level) > 1 {
		level = packRNodes(level, t.max)
	}
	t.root = level[0]
	return t, nil
}

// strPackRects tiles boxes (sorted by min corner) into leaves.
func strPackRects(items []RectItem, dim, fanout int) []*rnode {
	sort.Slice(items, func(i, j int) bool { return items[i].R.Min[0] < items[j].R.Min[0] })
	nLeaves := (len(items) + fanout - 1) / fanout
	nSlabs := 1
	for nSlabs*nSlabs < nLeaves {
		nSlabs++
	}
	slabSize := (len(items) + nSlabs - 1) / nSlabs
	var leaves []*rnode
	for s := 0; s < len(items); s += slabSize {
		e := s + slabSize
		if e > len(items) {
			e = len(items)
		}
		slab := items[s:e]
		if dim > 1 {
			sort.Slice(slab, func(i, j int) bool { return slab[i].R.Min[1] < slab[j].R.Min[1] })
		}
		for i := 0; i < len(slab); i += fanout {
			j := i + fanout
			if j > len(slab) {
				j = len(slab)
			}
			leaf := &rnode{leaf: true, items: append([]RectItem(nil), slab[i:j]...)}
			leaf.recalcRect()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packRNodes groups child nodes into parents.
func packRNodes(children []*rnode, fanout int) []*rnode {
	sort.Slice(children, func(i, j int) bool {
		return children[i].rect.Min[0] < children[j].rect.Min[0]
	})
	var parents []*rnode
	for i := 0; i < len(children); i += fanout {
		j := i + fanout
		if j > len(children) {
			j = len(children)
		}
		p := &rnode{children: append([]*rnode(nil), children[i:j]...)}
		p.recalcRect()
		parents = append(parents, p)
	}
	return parents
}

func (n *rnode) recalcRect() {
	if n.leaf {
		if len(n.items) == 0 {
			n.rect = Rect{}
			return
		}
		r := Rect{Min: n.items[0].R.Min.Clone(), Max: n.items[0].R.Max.Clone()}
		for _, it := range n.items[1:] {
			r.expand(it.R)
		}
		n.rect = r
		return
	}
	r := Rect{Min: n.children[0].rect.Min.Clone(), Max: n.children[0].rect.Max.Clone()}
	for _, c := range n.children[1:] {
		r.expand(c.rect)
	}
	n.rect = r
}

// Insert adds one box.
func (t *RectTree) Insert(it RectItem) error {
	if it.R.Min.Dim() != t.dim || it.R.Max.Dim() != t.dim {
		return fmt.Errorf("rtree: insert rect dim %d/%d, want %d", it.R.Min.Dim(), it.R.Max.Dim(), t.dim)
	}
	split := t.insert(t.root, it)
	if split != nil {
		old := t.root
		t.root = &rnode{children: []*rnode{old, split}}
		t.root.recalcRect()
	}
	t.n++
	return nil
}

func (t *RectTree) insert(n *rnode, it RectItem) *rnode {
	if n.leaf {
		n.items = append(n.items, it)
		n.recalcRect()
		if len(n.items) > t.max {
			return t.splitLeaf(n)
		}
		return nil
	}
	best, bestGrow := 0, 0.0
	for i, c := range n.children {
		g := c.rect.enlargement(it.R)
		if i == 0 || g < bestGrow ||
			(g == bestGrow && c.rect.area() < n.children[best].rect.area()) { //modlint:allow floatcmp -- heuristic tie-break only; a missed tie costs nothing but balance
			best, bestGrow = i, g
		}
	}
	split := t.insert(n.children[best], it)
	n.recalcRect()
	if split != nil {
		n.children = append(n.children, split)
		n.recalcRect()
		if len(n.children) > t.max {
			return t.splitInterior(n)
		}
	}
	return nil
}

func (t *RectTree) splitLeaf(n *rnode) *rnode {
	axis := n.widestAxis()
	sort.Slice(n.items, func(i, j int) bool { return n.items[i].R.Min[axis] < n.items[j].R.Min[axis] })
	mid := len(n.items) / 2
	sib := &rnode{leaf: true, items: append([]RectItem(nil), n.items[mid:]...)}
	n.items = n.items[:mid]
	n.recalcRect()
	sib.recalcRect()
	return sib
}

func (t *RectTree) splitInterior(n *rnode) *rnode {
	axis := n.widestAxis()
	sort.Slice(n.children, func(i, j int) bool {
		return n.children[i].rect.Min[axis] < n.children[j].rect.Min[axis]
	})
	mid := len(n.children) / 2
	sib := &rnode{children: append([]*rnode(nil), n.children[mid:]...)}
	n.children = n.children[:mid]
	n.recalcRect()
	sib.recalcRect()
	return sib
}

func (n *rnode) widestAxis() int {
	axis, widest := 0, -1.0
	for i := range n.rect.Min {
		if w := n.rect.Max[i] - n.rect.Min[i]; w > widest {
			axis, widest = i, w
		}
	}
	return axis
}

// SegIntersectsRect reports whether the segment a→b touches r (slab
// clipping: intersect the segment's parameter interval [0,1] with the
// per-axis entry/exit intervals).
func SegIntersectsRect(a, b geom.Vec, r Rect) bool {
	tmin, tmax := 0.0, 1.0
	for i := range a {
		d := b[i] - a[i]
		if d == 0 { //modlint:allow floatcmp -- axis-parallel segment: exact zero means no motion on this axis
			if a[i] < r.Min[i] || a[i] > r.Max[i] {
				return false
			}
			continue
		}
		t1 := (r.Min[i] - a[i]) / d
		t2 := (r.Max[i] - a[i]) / d
		if t1 > t2 {
			t1, t2 = t2, t1
		}
		if t1 > tmin {
			tmin = t1
		}
		if t2 < tmax {
			tmax = t2
		}
		if tmin > tmax {
			return false
		}
	}
	return true
}

// VisitSegment calls fn for every stored box the segment a→b touches.
// Returning false from fn stops the traversal early.
func (t *RectTree) VisitSegment(a, b geom.Vec, fn func(RectItem) bool) {
	if t.n == 0 {
		return
	}
	var walk func(n *rnode) bool
	walk = func(n *rnode) bool {
		if !SegIntersectsRect(a, b, n.rect) {
			return true
		}
		if n.leaf {
			for _, it := range n.items {
				if SegIntersectsRect(a, b, it.R) && !fn(it) {
					return false
				}
			}
			return true
		}
		for _, c := range n.children {
			if !walk(c) {
				return false
			}
		}
		return true
	}
	walk(t.root)
}

// SearchSegment returns the boxes the segment a→b touches, in ID order.
func (t *RectTree) SearchSegment(a, b geom.Vec) []RectItem {
	var out []RectItem
	t.VisitSegment(a, b, func(it RectItem) bool {
		out = append(out, it)
		return true
	})
	sort.Slice(out, func(i, j int) bool { return out[i].ID < out[j].ID })
	return out
}

// VisitRect calls fn for every stored box intersecting r (closed-box
// overlap: touching counts), in tree order. Returning false from fn
// stops the traversal early. The traversal itself performs no
// allocation — this is the broad-phase query shape of the uncertainty
// index (internal/query), where the query box is a ball's bounding box
// crossed with a time window.
func (t *RectTree) VisitRect(r Rect, fn func(RectItem) bool) {
	if t.n > 0 {
		visitRect(t.root, r, fn)
	}
}

func visitRect(n *rnode, r Rect, fn func(RectItem) bool) bool {
	if !n.rect.intersects(r) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if it.R.intersects(r) && !fn(it) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !visitRect(c, r, fn) {
			return false
		}
	}
	return true
}

// SearchRectAppend appends every stored box intersecting r to dst and
// returns the extended slice, with the appended run sorted by ID — the
// recycled-storage counterpart of VisitRect.
func (t *RectTree) SearchRectAppend(r Rect, dst []RectItem) []RectItem {
	if t.n == 0 {
		return dst
	}
	n := len(dst)
	dst = appendRect(t.root, r, dst)
	slices.SortFunc(dst[n:], func(a, b RectItem) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
	return dst
}

// SearchRect returns the boxes intersecting r, in ID order.
func (t *RectTree) SearchRect(r Rect) []RectItem {
	return t.SearchRectAppend(r, nil)
}

func appendRect(n *rnode, r Rect, dst []RectItem) []RectItem {
	if !n.rect.intersects(r) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.R.intersects(r) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = appendRect(c, r, dst)
	}
	return dst
}
