package rtree

// Zero-alloc rect-query surface: SearchRectAppend must recycle the
// caller's storage (leave the prefix alone, sort only the appended
// run), the empty tree must be a no-op, and construction must
// normalize degenerate fanouts instead of building unsplittable nodes.

import (
	"math/rand"
	"testing"
)

func TestSearchRectAppendRecyclesStorage(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	const dim = 3
	items := make([]RectItem, 300)
	for i := range items {
		items[i] = RectItem{ID: uint64(i), R: randRect(rng, dim)}
	}
	tree, err := BulkRects(items, dim, 0) // fanout 0 → DefaultFanout
	if err != nil {
		t.Fatal(err)
	}
	if tree.max != DefaultFanout {
		t.Fatalf("fanout 0 normalized to %d, want DefaultFanout=%d", tree.max, DefaultFanout)
	}
	sentinel := RectItem{ID: 999999}
	dst := []RectItem{sentinel}
	for q := 0; q < 30; q++ {
		r := randRect(rng, dim)
		want := tree.SearchRect(r)
		dst = tree.SearchRectAppend(r, dst[:1])
		if dst[0].ID != sentinel.ID {
			t.Fatalf("query %d: prefix clobbered: %+v", q, dst[0])
		}
		got := dst[1:]
		if len(got) != len(want) {
			t.Fatalf("query %d: %d hits appended, SearchRect found %d", q, len(got), len(want))
		}
		for i := range got {
			if got[i].ID != want[i].ID {
				t.Fatalf("query %d hit %d: ID %d, want %d (appended run must be ID-sorted)",
					q, i, got[i].ID, want[i].ID)
			}
		}
	}

	empty := NewRectTree(dim, 2) // fanout 2 also normalizes
	if empty.max != DefaultFanout {
		t.Fatalf("fanout 2 normalized to %d, want %d", empty.max, DefaultFanout)
	}
	if out := empty.SearchRectAppend(randRect(rng, dim), dst[:1]); len(out) != 1 || out[0].ID != sentinel.ID {
		t.Fatalf("empty tree: dst changed to %+v", out)
	}

	// Bulk load rejects mixed dimensions before touching the tree.
	bad := []RectItem{{ID: 1, R: randRect(rng, dim)}, {ID: 2, R: randRect(rng, dim+1)}}
	if _, err := BulkRects(bad, dim, 0); err == nil {
		t.Fatal("dim-mismatched bulk load: want error")
	}
}
