package rtree

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func randRect(rng *rand.Rand, dim int) Rect {
	lo := make(geom.Vec, dim)
	hi := make(geom.Vec, dim)
	for i := 0; i < dim; i++ {
		a := rng.Float64()*200 - 100
		b := a + rng.Float64()*20
		lo[i], hi[i] = a, b
	}
	return Rect{Min: lo, Max: hi}
}

func randSeg(rng *rand.Rand, dim int) (geom.Vec, geom.Vec) {
	a := make(geom.Vec, dim)
	b := make(geom.Vec, dim)
	for i := 0; i < dim; i++ {
		a[i] = rng.Float64()*300 - 150
		b[i] = rng.Float64()*300 - 150
	}
	return a, b
}

// bruteSeg filters items by the same predicate the tree must implement.
func bruteSeg(items []RectItem, a, b geom.Vec) map[uint64]bool {
	hit := make(map[uint64]bool)
	for _, it := range items {
		if SegIntersectsRect(a, b, it.R) {
			hit[it.ID] = true
		}
	}
	return hit
}

func checkSegSearch(t *testing.T, tree *RectTree, items []RectItem, rng *rand.Rand, dim int) {
	t.Helper()
	for q := 0; q < 50; q++ {
		a, b := randSeg(rng, dim)
		want := bruteSeg(items, a, b)
		got := tree.SearchSegment(a, b)
		if len(got) != len(want) {
			t.Fatalf("query %d: got %d hits, want %d", q, len(got), len(want))
		}
		for _, it := range got {
			if !want[it.ID] {
				t.Fatalf("query %d: spurious hit %d", q, it.ID)
			}
		}
		for i := 1; i < len(got); i++ {
			if got[i-1].ID >= got[i].ID {
				t.Fatalf("results not ID-ordered: %d before %d", got[i-1].ID, got[i].ID)
			}
		}
	}
}

func TestRectTreeBulkSegmentSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for _, dim := range []int{1, 2, 3} {
		items := make([]RectItem, 300)
		for i := range items {
			items[i] = RectItem{ID: uint64(i), R: randRect(rng, dim)}
		}
		tree, err := BulkRects(items, dim, 8)
		if err != nil {
			t.Fatalf("dim %d bulk: %v", dim, err)
		}
		if tree.Len() != len(items) {
			t.Fatalf("dim %d: Len = %d, want %d", dim, tree.Len(), len(items))
		}
		checkSegSearch(t, tree, items, rng, dim)
	}
}

func TestRectTreeInsertSegmentSearch(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	dim := 2
	tree := NewRectTree(dim, 6)
	var items []RectItem
	for i := 0; i < 250; i++ {
		it := RectItem{ID: uint64(i), R: randRect(rng, dim)}
		if err := tree.Insert(it); err != nil {
			t.Fatalf("insert %d: %v", i, err)
		}
		items = append(items, it)
	}
	checkSegSearch(t, tree, items, rng, dim)
}

func TestRectTreeDimMismatch(t *testing.T) {
	tree := NewRectTree(2, 8)
	bad := RectItem{ID: 1, R: Rect{Min: geom.Vec{0}, Max: geom.Vec{1}}}
	if err := tree.Insert(bad); err == nil {
		t.Fatal("insert with wrong dimension accepted")
	}
	if _, err := BulkRects([]RectItem{bad}, 2, 8); err == nil {
		t.Fatal("bulk with wrong dimension accepted")
	}
}

func TestSegIntersectsRect(t *testing.T) {
	r := Rect{Min: geom.Vec{0, 0}, Max: geom.Vec{2, 2}}
	cases := []struct {
		a, b geom.Vec
		want bool
	}{
		{geom.Vec{-1, 1}, geom.Vec{3, 1}, true},    // straight through
		{geom.Vec{1, 1}, geom.Vec{1, 1}, true},     // point inside
		{geom.Vec{3, 3}, geom.Vec{3, 3}, false},    // point outside
		{geom.Vec{-1, -1}, geom.Vec{-1, 5}, false}, // parallel miss
		{geom.Vec{0, -1}, geom.Vec{0, 5}, true},    // along the edge
		{geom.Vec{-2, 0}, geom.Vec{0, -2}, false},  // corner miss (diagonal)
		{geom.Vec{-1, 1}, geom.Vec{1, 3}, true},    // clips the corner
		{geom.Vec{2.5, 1}, geom.Vec{5, 1}, false},  // starts past the box
	}
	for i, c := range cases {
		if got := SegIntersectsRect(c.a, c.b, r); got != c.want {
			t.Errorf("case %d: SegIntersectsRect(%v, %v) = %v, want %v", i, c.a, c.b, got, c.want)
		}
	}
}

func TestVisitSegmentEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := make([]RectItem, 100)
	for i := range items {
		items[i] = RectItem{ID: uint64(i), R: randRect(rng, 2)}
	}
	tree, err := BulkRects(items, 2, 8)
	if err != nil {
		t.Fatal(err)
	}
	n := 0
	tree.VisitSegment(geom.Vec{-150, -150}, geom.Vec{150, 150}, func(RectItem) bool {
		n++
		return n < 3
	})
	if n > 3 {
		t.Fatalf("visit continued after callback returned false: %d calls", n)
	}
}
