// Package rtree implements an R-tree over static points: STR (sort-tile-
// recursive) bulk loading, quadratic-cost linear-split insertion, range
// search, radius search, and best-first k-nearest-neighbor search.
//
// It is the substrate for the Song–Roussopoulos [26] comparison baseline
// (experiment E7): that algorithm stores the stationary objects in an
// R*-tree and re-issues range searches around the moving query point.
// Only point data is needed for the reproduction, which keeps the
// structure simple; split quality does not affect the correctness
// comparison being reproduced (see DESIGN.md, substitution 4).
package rtree

import (
	"container/heap"
	"errors"
	"fmt"
	"math"
	"slices"
	"sort"

	"repro/internal/geom"
)

// Item is a point entry.
type Item struct {
	ID uint64
	P  geom.Vec
}

// Rect is an axis-aligned box.
type Rect struct {
	Min, Max geom.Vec
}

// NewRect validates corners.
func NewRect(min, max geom.Vec) (Rect, error) {
	if len(min) != len(max) {
		return Rect{}, errors.New("rtree: corner dimension mismatch")
	}
	for i := range min {
		if min[i] > max[i] {
			return Rect{}, fmt.Errorf("rtree: inverted rect on axis %d", i)
		}
	}
	return Rect{Min: min.Clone(), Max: max.Clone()}, nil
}

// contains reports whether p lies in r.
func (r Rect) contains(p geom.Vec) bool {
	for i := range p {
		if p[i] < r.Min[i] || p[i] > r.Max[i] {
			return false
		}
	}
	return true
}

// intersects reports whether two rects overlap.
func (r Rect) intersects(o Rect) bool {
	for i := range r.Min {
		if r.Max[i] < o.Min[i] || o.Max[i] < r.Min[i] {
			return false
		}
	}
	return true
}

// expand grows r to cover o.
func (r *Rect) expand(o Rect) {
	for i := range r.Min {
		if o.Min[i] < r.Min[i] {
			r.Min[i] = o.Min[i]
		}
		if o.Max[i] > r.Max[i] {
			r.Max[i] = o.Max[i]
		}
	}
}

// area returns the volume of r.
func (r Rect) area() float64 {
	a := 1.0
	for i := range r.Min {
		a *= r.Max[i] - r.Min[i]
	}
	return a
}

// enlargement returns the area growth needed to cover o.
func (r Rect) enlargement(o Rect) float64 {
	grown := Rect{Min: r.Min.Clone(), Max: r.Max.Clone()}
	grown.expand(o)
	return grown.area() - r.area()
}

// dist2 returns the squared distance from p to the rect (0 if inside).
func (r Rect) dist2(p geom.Vec) float64 {
	d := 0.0
	for i := range p {
		switch {
		case p[i] < r.Min[i]:
			x := r.Min[i] - p[i]
			d += x * x
		case p[i] > r.Max[i]:
			x := p[i] - r.Max[i]
			d += x * x
		}
	}
	return d
}

// pointRect is the degenerate rect of a point.
func pointRect(p geom.Vec) Rect { return Rect{Min: p, Max: p} }

type node struct {
	rect     Rect
	leaf     bool
	items    []Item  // leaf
	children []*node // interior
}

// Tree is the R-tree. Not safe for concurrent mutation.
type Tree struct {
	root *node
	dim  int
	max  int
	n    int
}

// DefaultFanout is the default maximum entries per node.
const DefaultFanout = 16

// New returns an empty tree for points of the given dimension.
func New(dim, fanout int) *Tree {
	if fanout < 4 {
		fanout = DefaultFanout
	}
	return &Tree{dim: dim, max: fanout, root: &node{leaf: true}}
}

// Len returns the number of stored points.
func (t *Tree) Len() int { return t.n }

// Bulk builds a tree by STR packing: sort by x, tile into vertical slabs,
// sort each slab by y, pack runs of `fanout` points per leaf; repeat
// upward. For dimensions above 2 the remaining axes cycle.
func Bulk(items []Item, dim, fanout int) (*Tree, error) {
	t := New(dim, fanout)
	for _, it := range items {
		if it.P.Dim() != dim {
			return nil, fmt.Errorf("rtree: item %d has dim %d, want %d", it.ID, it.P.Dim(), dim)
		}
	}
	if len(items) == 0 {
		return t, nil
	}
	cp := make([]Item, len(items))
	copy(cp, items)
	leaves := strPack(cp, dim, t.max)
	t.n = len(items)
	// Build interior levels by packing child rects the same way.
	level := leaves
	for len(level) > 1 {
		level = packNodes(level, t.max)
	}
	t.root = level[0]
	return t, nil
}

// strPack tiles sorted points into leaves.
func strPack(items []Item, dim, fanout int) []*node {
	sort.Slice(items, func(i, j int) bool { return items[i].P[0] < items[j].P[0] })
	nLeaves := (len(items) + fanout - 1) / fanout
	nSlabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	slabSize := (len(items) + nSlabs - 1) / nSlabs
	var leaves []*node
	for s := 0; s < len(items); s += slabSize {
		e := s + slabSize
		if e > len(items) {
			e = len(items)
		}
		slab := items[s:e]
		if dim > 1 {
			sort.Slice(slab, func(i, j int) bool { return slab[i].P[1] < slab[j].P[1] })
		}
		for i := 0; i < len(slab); i += fanout {
			j := i + fanout
			if j > len(slab) {
				j = len(slab)
			}
			leaf := &node{leaf: true, items: append([]Item(nil), slab[i:j]...)}
			leaf.recalcRect()
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes groups child nodes into parents along their rect centers.
func packNodes(children []*node, fanout int) []*node {
	sort.Slice(children, func(i, j int) bool {
		return children[i].rect.Min[0] < children[j].rect.Min[0]
	})
	var parents []*node
	for i := 0; i < len(children); i += fanout {
		j := i + fanout
		if j > len(children) {
			j = len(children)
		}
		p := &node{children: append([]*node(nil), children[i:j]...)}
		p.recalcRect()
		parents = append(parents, p)
	}
	return parents
}

func (n *node) recalcRect() {
	if n.leaf {
		if len(n.items) == 0 {
			n.rect = Rect{}
			return
		}
		r := pointRect(n.items[0].P.Clone())
		r.Max = n.items[0].P.Clone()
		for _, it := range n.items[1:] {
			r.expand(pointRect(it.P))
		}
		n.rect = r
		return
	}
	r := Rect{Min: n.children[0].rect.Min.Clone(), Max: n.children[0].rect.Max.Clone()}
	for _, c := range n.children[1:] {
		r.expand(c.rect)
	}
	n.rect = r
}

// Insert adds one point.
func (t *Tree) Insert(it Item) error {
	if it.P.Dim() != t.dim {
		return fmt.Errorf("rtree: insert dim %d, want %d", it.P.Dim(), t.dim)
	}
	split := t.insert(t.root, it)
	if split != nil {
		old := t.root
		t.root = &node{children: []*node{old, split}}
		t.root.recalcRect()
	}
	t.n++
	return nil
}

// insert descends to the best leaf; returns a new sibling on split.
func (t *Tree) insert(n *node, it Item) *node {
	if n.leaf {
		n.items = append(n.items, it)
		n.recalcRect()
		if len(n.items) > t.max {
			return t.splitLeaf(n)
		}
		return nil
	}
	// Choose the child needing least enlargement.
	best, bestGrow := 0, math.Inf(1)
	for i, c := range n.children {
		g := c.rect.enlargement(pointRect(it.P))
		if g < bestGrow || (g == bestGrow && c.rect.area() < n.children[best].rect.area()) { //modlint:allow floatcmp -- heuristic tie-break only; a missed tie costs nothing but balance
			best, bestGrow = i, g
		}
	}
	split := t.insert(n.children[best], it)
	n.recalcRect()
	if split != nil {
		n.children = append(n.children, split)
		n.recalcRect()
		if len(n.children) > t.max {
			return t.splitInterior(n)
		}
	}
	return nil
}

// splitLeaf splits along the axis with the widest spread.
func (t *Tree) splitLeaf(n *node) *node {
	axis := n.widestAxis()
	sort.Slice(n.items, func(i, j int) bool { return n.items[i].P[axis] < n.items[j].P[axis] })
	mid := len(n.items) / 2
	sib := &node{leaf: true, items: append([]Item(nil), n.items[mid:]...)}
	n.items = n.items[:mid]
	n.recalcRect()
	sib.recalcRect()
	return sib
}

func (t *Tree) splitInterior(n *node) *node {
	axis := n.widestAxis()
	sort.Slice(n.children, func(i, j int) bool {
		return n.children[i].rect.Min[axis] < n.children[j].rect.Min[axis]
	})
	mid := len(n.children) / 2
	sib := &node{children: append([]*node(nil), n.children[mid:]...)}
	n.children = n.children[:mid]
	n.recalcRect()
	sib.recalcRect()
	return sib
}

func (n *node) widestAxis() int {
	axis, widest := 0, -1.0
	for i := range n.rect.Min {
		if w := n.rect.Max[i] - n.rect.Min[i]; w > widest {
			axis, widest = i, w
		}
	}
	return axis
}

// sortItemsByID orders a result run by ID. slices.SortFunc with a
// non-capturing comparator keeps the append-into search variants free
// of per-call sort allocations (sort.Slice's interface boxing).
func sortItemsByID(s []Item) {
	slices.SortFunc(s, func(a, b Item) int {
		switch {
		case a.ID < b.ID:
			return -1
		case a.ID > b.ID:
			return 1
		}
		return 0
	})
}

// SearchRange returns all points inside the rect, in ID order.
func (t *Tree) SearchRange(r Rect) []Item {
	return t.SearchRangeAppend(r, nil)
}

// SearchRangeAppend appends every point inside the rect to dst and
// returns the extended slice, with the appended run sorted by ID — the
// recycled-storage variant of SearchRange: a caller that keeps its
// result slice between queries allocates only when a query outgrows it.
func (t *Tree) SearchRangeAppend(r Rect, dst []Item) []Item {
	if t.n == 0 {
		return dst
	}
	n := len(dst)
	dst = appendRange(t.root, r, dst)
	sortItemsByID(dst[n:])
	return dst
}

// VisitRange calls fn for every point inside the rect, in tree order
// (no ID ordering). Returning false from fn stops the traversal early.
// The traversal itself performs no allocation.
func (t *Tree) VisitRange(r Rect, fn func(Item) bool) {
	if t.n > 0 {
		visitRange(t.root, r, fn)
	}
}

func appendRange(n *node, r Rect, dst []Item) []Item {
	if !n.rect.intersects(r) {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if r.contains(it.P) {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = appendRange(c, r, dst)
	}
	return dst
}

func visitRange(n *node, r Rect, fn func(Item) bool) bool {
	if !n.rect.intersects(r) {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if r.contains(it.P) && !fn(it) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !visitRange(c, r, fn) {
			return false
		}
	}
	return true
}

// SearchRadius returns all points within Euclidean distance rad of
// center, in ID order.
func (t *Tree) SearchRadius(center geom.Vec, rad float64) []Item {
	return t.SearchRadiusAppend(center, rad, nil)
}

// SearchRadiusAppend appends all points within rad of center to dst and
// returns the extended slice, with the appended run sorted by ID (see
// SearchRangeAppend).
func (t *Tree) SearchRadiusAppend(center geom.Vec, rad float64, dst []Item) []Item {
	if t.n == 0 {
		return dst
	}
	n := len(dst)
	dst = appendRadius(t.root, center, rad*rad, dst)
	sortItemsByID(dst[n:])
	return dst
}

// VisitRadius calls fn for every point within rad of center, in tree
// order. Returning false from fn stops the traversal early. The
// traversal itself performs no allocation.
func (t *Tree) VisitRadius(center geom.Vec, rad float64, fn func(Item) bool) {
	if t.n > 0 {
		visitRadius(t.root, center, rad*rad, fn)
	}
}

func appendRadius(n *node, center geom.Vec, r2 float64, dst []Item) []Item {
	if n.rect.dist2(center) > r2 {
		return dst
	}
	if n.leaf {
		for _, it := range n.items {
			if it.P.Dist2(center) <= r2 {
				dst = append(dst, it)
			}
		}
		return dst
	}
	for _, c := range n.children {
		dst = appendRadius(c, center, r2, dst)
	}
	return dst
}

func visitRadius(n *node, center geom.Vec, r2 float64, fn func(Item) bool) bool {
	if n.rect.dist2(center) > r2 {
		return true
	}
	if n.leaf {
		for _, it := range n.items {
			if it.P.Dist2(center) <= r2 && !fn(it) {
				return false
			}
		}
		return true
	}
	for _, c := range n.children {
		if !visitRadius(c, center, r2, fn) {
			return false
		}
	}
	return true
}

// nnEntry is a best-first queue element: a node or an item.
type nnEntry struct {
	d2   float64
	n    *node
	item *Item
}

type nnQueue []nnEntry

func (q nnQueue) Len() int            { return len(q) }
func (q nnQueue) Less(i, j int) bool  { return q[i].d2 < q[j].d2 }
func (q nnQueue) Swap(i, j int)       { q[i], q[j] = q[j], q[i] }
func (q *nnQueue) Push(x interface{}) { *q = append(*q, x.(nnEntry)) }
func (q *nnQueue) Pop() interface{} {
	old := *q
	n := len(old)
	x := old[n-1]
	*q = old[:n-1]
	return x
}

// NearestK returns the k nearest points to center (fewer if the tree is
// smaller), ordered by increasing distance with ID tie-break.
func (t *Tree) NearestK(center geom.Vec, k int) []Item {
	if t.n == 0 || k <= 0 {
		return nil
	}
	q := &nnQueue{{d2: t.root.rect.dist2(center), n: t.root}}
	var out []Item
	for q.Len() > 0 && len(out) < k {
		e := heap.Pop(q).(nnEntry)
		switch {
		case e.item != nil:
			out = append(out, *e.item)
		case e.n.leaf:
			for i := range e.n.items {
				it := e.n.items[i]
				heap.Push(q, nnEntry{d2: it.P.Dist2(center), item: &it})
			}
		default:
			for _, c := range e.n.children {
				heap.Push(q, nnEntry{d2: c.rect.dist2(center), n: c})
			}
		}
	}
	return out
}
