package rtree

import (
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
)

func randItems(rng *rand.Rand, n int) []Item {
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{ID: uint64(i + 1), P: geom.Of(rng.Float64()*1000, rng.Float64()*1000)}
	}
	return items
}

func TestBulkAndRange(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	items := randItems(rng, 500)
	tr, err := Bulk(items, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Len() != 500 {
		t.Fatalf("Len = %d", tr.Len())
	}
	r, err := NewRect(geom.Of(100, 100), geom.Of(400, 300))
	if err != nil {
		t.Fatal(err)
	}
	got := tr.SearchRange(r)
	var want []Item
	for _, it := range items {
		if r.contains(it.P) {
			want = append(want, it)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i].ID < want[j].ID })
	if len(got) != len(want) {
		t.Fatalf("range: %d vs brute %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i].ID {
			t.Fatalf("range mismatch at %d", i)
		}
	}
}

func TestInsertAndRadius(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	tr := New(2, 8)
	items := randItems(rng, 300)
	for _, it := range items {
		if err := tr.Insert(it); err != nil {
			t.Fatal(err)
		}
	}
	if tr.Len() != 300 {
		t.Fatalf("Len = %d", tr.Len())
	}
	center := geom.Of(500, 500)
	got := tr.SearchRadius(center, 150)
	var want []uint64
	for _, it := range items {
		if it.P.Dist(center) <= 150 {
			want = append(want, it.ID)
		}
	}
	sort.Slice(want, func(i, j int) bool { return want[i] < want[j] })
	if len(got) != len(want) {
		t.Fatalf("radius: %d vs brute %d", len(got), len(want))
	}
	for i := range got {
		if got[i].ID != want[i] {
			t.Fatalf("radius mismatch at %d", i)
		}
	}
	if err := tr.Insert(Item{ID: 9999, P: geom.Of(1, 2, 3)}); err == nil {
		t.Error("wrong-dimension insert accepted")
	}
}

func TestNearestK(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	items := randItems(rng, 400)
	tr, err := Bulk(items, 2, 16)
	if err != nil {
		t.Fatal(err)
	}
	for probe := 0; probe < 20; probe++ {
		center := geom.Of(rng.Float64()*1000, rng.Float64()*1000)
		k := 1 + rng.Intn(10)
		got := tr.NearestK(center, k)
		// Brute force.
		sorted := append([]Item(nil), items...)
		sort.Slice(sorted, func(i, j int) bool {
			di, dj := sorted[i].P.Dist2(center), sorted[j].P.Dist2(center)
			if di != dj {
				return di < dj
			}
			return sorted[i].ID < sorted[j].ID
		})
		if len(got) != k {
			t.Fatalf("NearestK returned %d, want %d", len(got), k)
		}
		for i := 0; i < k; i++ {
			if got[i].P.Dist2(center) != sorted[i].P.Dist2(center) {
				t.Fatalf("probe %d rank %d: got %v (d2=%g), want d2=%g",
					probe, i, got[i], got[i].P.Dist2(center), sorted[i].P.Dist2(center))
			}
		}
	}
	if got := tr.NearestK(geom.Of(0, 0), 0); got != nil {
		t.Error("k=0 should return nil")
	}
}

func TestEmptyTree(t *testing.T) {
	tr := New(2, 16)
	if got := tr.NearestK(geom.Of(0, 0), 3); len(got) != 0 {
		t.Error("NN on empty tree")
	}
	r, _ := NewRect(geom.Of(0, 0), geom.Of(1, 1))
	if got := tr.SearchRange(r); len(got) != 0 {
		t.Error("range on empty tree")
	}
	if got := tr.SearchRadius(geom.Of(0, 0), 5); len(got) != 0 {
		t.Error("radius on empty tree")
	}
	empty, err := Bulk(nil, 2, 16)
	if err != nil || empty.Len() != 0 {
		t.Error("empty bulk")
	}
}

func TestRectValidation(t *testing.T) {
	if _, err := NewRect(geom.Of(1, 1), geom.Of(0, 0)); err == nil {
		t.Error("inverted rect accepted")
	}
	if _, err := NewRect(geom.Of(1), geom.Of(0, 0)); err == nil {
		t.Error("dim mismatch accepted")
	}
	if _, err := Bulk([]Item{{ID: 1, P: geom.Of(1)}}, 2, 16); err == nil {
		t.Error("wrong-dim bulk accepted")
	}
}

func TestBulkEqualsInsertResults(t *testing.T) {
	rng := rand.New(rand.NewSource(6))
	items := randItems(rng, 200)
	bulk, _ := Bulk(items, 2, 8)
	inc := New(2, 8)
	for _, it := range items {
		_ = inc.Insert(it)
	}
	for probe := 0; probe < 10; probe++ {
		c := geom.Of(rng.Float64()*1000, rng.Float64()*1000)
		a := bulk.SearchRadius(c, 200)
		b := inc.SearchRadius(c, 200)
		if len(a) != len(b) {
			t.Fatalf("bulk %d vs incremental %d results", len(a), len(b))
		}
		for i := range a {
			if a[i].ID != b[i].ID {
				t.Fatalf("result mismatch at %d", i)
			}
		}
	}
}

func BenchmarkNearestK(b *testing.B) {
	rng := rand.New(rand.NewSource(7))
	items := randItems(rng, 10000)
	tr, _ := Bulk(items, 2, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = tr.NearestK(geom.Of(float64(i%1000), 500), 5)
	}
}
