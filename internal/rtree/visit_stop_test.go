package rtree

// Early-stop contract of the point-tree visitors: returning false from
// the callback must abort the traversal — including unwinding through
// interior levels — because internal/sub uses it to cap fan-out work.
// Also pins fanout normalization and the stability of ID-sorted runs
// under duplicate IDs.

import (
	"math/rand"
	"testing"

	"repro/internal/geom"
)

func TestPointVisitorsEarlyStop(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	tree := New(2, 2) // fanout 2 normalizes, and the tree grows interior levels
	if tree.max != DefaultFanout {
		t.Fatalf("fanout 2 normalized to %d, want %d", tree.max, DefaultFanout)
	}
	n := 500
	for i := 0; i < n; i++ {
		p := geom.Of(rng.Float64()*100, rng.Float64()*100)
		if err := tree.Insert(Item{ID: uint64(i), P: p}); err != nil {
			t.Fatal(err)
		}
	}
	all := Rect{Min: geom.Of(-1, -1), Max: geom.Of(101, 101)}

	seen := 0
	tree.VisitRange(all, func(Item) bool { seen++; return seen < 7 })
	if seen != 7 {
		t.Fatalf("VisitRange visited %d items after stopping at 7", seen)
	}
	seen = 0
	tree.VisitRadius(geom.Of(50, 50), 1000, func(Item) bool { seen++; return seen < 7 })
	if seen != 7 {
		t.Fatalf("VisitRadius visited %d items after stopping at 7", seen)
	}
	// Exhaustive visits agree with the search variants.
	seen = 0
	tree.VisitRange(all, func(Item) bool { seen++; return true })
	if seen != n {
		t.Fatalf("VisitRange saw %d of %d items", seen, n)
	}
	seen = 0
	tree.VisitRadius(geom.Of(50, 50), 1000, func(Item) bool { seen++; return true })
	if seen != n {
		t.Fatalf("VisitRadius saw %d of %d items", seen, n)
	}

	// Duplicate IDs are allowed in a result run; the sort must not
	// drop or reorder them into an invalid sequence.
	dup := New(2, 0)
	for i := 0; i < 6; i++ {
		if err := dup.Insert(Item{ID: uint64(i % 2), P: geom.Of(float64(i), 0)}); err != nil {
			t.Fatal(err)
		}
	}
	got := dup.SearchRange(Rect{Min: geom.Of(-1, -1), Max: geom.Of(10, 1)})
	if len(got) != 6 {
		t.Fatalf("duplicate-ID search returned %d of 6 items", len(got))
	}
	for i := 1; i < len(got); i++ {
		if got[i-1].ID > got[i].ID {
			t.Fatalf("run not ID-sorted at %d: %d after %d", i, got[i].ID, got[i-1].ID)
		}
	}

	// Bulk-loading zero boxes yields a working empty tree.
	empty, err := BulkRects(nil, 2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if empty.Len() != 0 {
		t.Fatalf("empty bulk load has Len %d", empty.Len())
	}
	empty.VisitRect(all, func(RectItem) bool { t.Fatal("visit on empty tree"); return false })
}
