package server

// Regression tests for the float-edge wire bugs: a non-finite value in
// a response used to fail inside json.Encoder AFTER the 200 header was
// written, handing the client a truncated body with a success status;
// and the /query/* handlers accepted non-finite window bounds and
// query points. The buffered ok() turns encode failures into clean
// 500s, and finite()/finiteVec() reject NaN/±Inf parameters with 400.
//
// Strict JSON cannot express NaN or Inf (the decoder rejects 1e999
// with a range error), so the non-finite *request* path is exercised
// two ways: the validators are unit-tested directly, and the binary
// batch codec — which CAN carry ±Inf coefficients on the wire — is
// shown to be gated at Apply.

import (
	"bytes"
	"encoding/json"
	"io"
	"math"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/shard"
)

// TestNonFiniteResponseSurfacesAs500: a backend answer carrying a
// non-finite tau (an empty store's tau0 is -Inf) must produce a 500
// with a well-formed error envelope — not a 200 with a truncated body.
func TestNonFiniteResponseSurfacesAs500(t *testing.T) {
	ans := query.NewAnswerSet()
	ans.Finish(0)
	be := &stubBackend{liveTau: math.Inf(-1), ansTau: math.Inf(-1), ans: ans}
	ts := httptest.NewServer(New(be, nil))
	defer ts.Close()

	for _, tc := range []struct {
		name string
		do   func() (*http.Response, error)
	}{
		{"query/knn", func() (*http.Response, error) {
			return http.Post(ts.URL+"/query/knn", "application/json",
				strings.NewReader(`{"k":1,"lo":0,"hi":1,"point":[0,0]}`))
		}},
		{"objects", func() (*http.Response, error) {
			return http.Get(ts.URL + "/objects")
		}},
	} {
		resp, err := tc.do()
		if err != nil {
			t.Fatal(err)
		}
		body, _ := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if resp.StatusCode != http.StatusInternalServerError {
			t.Errorf("%s with -Inf tau: code %d (body %q), want 500", tc.name, resp.StatusCode, body)
			continue
		}
		var env struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(body, &env); err != nil || env.Error == "" {
			t.Errorf("%s error body %q is not a valid error envelope: %v", tc.name, body, err)
		}
	}
}

// TestQueryRejectsNonFiniteParams pins the validator behavior (strict
// JSON can't deliver NaN/Inf end-to-end, so the helpers are the unit
// under test) and the end-to-end 400 for an out-of-range literal.
func TestQueryRejectsNonFiniteParams(t *testing.T) {
	for _, v := range []float64{math.NaN(), math.Inf(1), math.Inf(-1)} {
		if err := finite("x", v); err == nil {
			t.Errorf("finite(%g) = nil, want error", v)
		}
		if err := finiteVec("p", []float64{0, v}); err == nil {
			t.Errorf("finiteVec(..%g) = nil, want error", v)
		}
	}
	if err := finite("x", 1e308); err != nil {
		t.Errorf("finite(1e308) = %v, want nil", err)
	}
	if err := finiteVec("p", []float64{0, -1e308}); err != nil {
		t.Errorf("finiteVec(-1e308) = %v, want nil", err)
	}

	// End-to-end: an overflow literal must come back 400 with a valid
	// error envelope, never a truncated or empty body.
	ts, _ := newTestServer(t)
	resp, err := http.Post(ts.URL+"/query/knn", "application/json",
		strings.NewReader(`{"k":1,"lo":0,"hi":1e999,"point":[0,0]}`))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("hi=1e999: code %d, want 400", resp.StatusCode)
	}
	var env struct {
		Error string `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&env); err != nil || env.Error == "" {
		t.Fatalf("error body not a valid envelope: %v", err)
	}
}

// TestBinaryBatchIngest: the compact codec round-trips a batch through
// POST /update/batch, and a batch carrying ±Inf coefficients — which
// the binary wire CAN express, unlike JSON — is rejected at Apply with
// a 400 rather than poisoning the store.
func TestBinaryBatchIngest(t *testing.T) {
	db := mod.NewDB(2, -1)
	ts := httptest.NewServer(New(shard.Single(db), nil))
	defer ts.Close()

	good := []mod.Update{
		mod.New(1, 0, geom.Of(1, 2), geom.Of(0, 0)),
		mod.ChDir(1, 1, geom.Of(-1, 0)),
	}
	var buf bytes.Buffer
	if err := mod.EncodeUpdatesBinary(&buf, good); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/update/batch", mod.BinaryUpdatesContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	var out struct {
		Applied int     `json:"applied"`
		Tau     float64 `json:"tau"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 200 || out.Applied != 2 || out.Tau != 1 {
		t.Fatalf("binary batch: code %d, applied %d, tau %g", resp.StatusCode, out.Applied, out.Tau)
	}

	// ±Inf in a velocity: representable on the wire, rejected at Apply.
	buf.Reset()
	bad := []mod.Update{mod.New(2, 2, geom.Of(0, 0), geom.Of(math.Inf(1), 0))}
	if err := mod.EncodeUpdatesBinary(&buf, bad); err != nil {
		t.Fatal(err)
	}
	resp, err = http.Post(ts.URL+"/update/batch", mod.BinaryUpdatesContentType, &buf)
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("+Inf coefficient batch: code %d, want 400", resp.StatusCode)
	}
	if db.Len() != 1 {
		t.Fatalf("store holds %d objects after rejected batch, want 1", db.Len())
	}

	// A corrupt frame is a strict 400 before anything applies.
	resp, err = http.Post(ts.URL+"/update/batch", mod.BinaryUpdatesContentType,
		strings.NewReader("MODU\x01\xff\xff\xff"))
	if err != nil {
		t.Fatal(err)
	}
	_, _ = io.Copy(io.Discard, resp.Body)
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest {
		t.Fatalf("corrupt binary batch: code %d, want 400", resp.StatusCode)
	}
}

// TestBinarySnapshotEndpoint: GET /snapshot?format=binary streams the
// compact snapshot; LoadBinary round-trips it StateEqual.
func TestBinarySnapshotEndpoint(t *testing.T) {
	ts, db := newTestServer(t)
	resp, err := http.Get(ts.URL + "/snapshot?format=binary")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("binary snapshot: code %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "application/octet-stream" {
		t.Errorf("Content-Type %q", ct)
	}
	got, err := mod.LoadBinary(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if !got.StateEqual(db) {
		t.Fatal("binary snapshot round-trip is not StateEqual")
	}
}
