package server

// HTTP-layer observability: a middleware wrapper that records one
// counter (endpoint, status) and one latency observation per request
// into the server's obs.Registry, plus the statusWriter it needs to
// see the response code. Kept out of the handlers so every endpoint —
// including ones added later — is covered by construction.

import (
	"net/http"
	"strconv"
	"time"

	"repro/internal/obs"
)

// httpMetrics is the HTTP-layer instrument set.
type httpMetrics struct {
	requests  *obs.CounterVec   // mod_http_requests_total{endpoint,code}
	latency   *obs.HistogramVec // mod_http_request_seconds{endpoint}
	batchSize *obs.Histogram    // mod_http_update_batch_size
}

func newHTTPMetrics(reg *obs.Registry) *httpMetrics {
	return &httpMetrics{
		requests: reg.NewCounterVec("mod_http_requests_total",
			"HTTP requests served, by endpoint and status code", "endpoint", "code"),
		latency: reg.NewHistogramVec("mod_http_request_seconds",
			"HTTP request duration, by endpoint", obs.DefLatencyBuckets, "endpoint"),
		batchSize: reg.NewHistogram("mod_http_update_batch_size",
			"updates per POST /update/batch request", obs.DefSizeBuckets),
	}
}

// recordBatchSize observes one /update/batch request's size.
func (s *Server) recordBatchSize(n int) {
	if s.httpMetrics == nil {
		return
	}
	s.httpMetrics.batchSize.Observe(float64(n))
}

// endpointLabel normalizes a request to a bounded label set: the
// method plus the fixed route paths the mux serves. Unknown paths
// collapse to "other" so scanners can't inflate the label cardinality.
func (s *Server) endpointLabel(r *http.Request) string {
	if s.routes[r.URL.Path] {
		return r.Method + " " + r.URL.Path
	}
	return "other"
}

// statusWriter captures the response status for the request counter.
// It deliberately implements no optional interfaces itself; streaming
// handlers unwrap it (via Unwrap) to reach the flusher beneath.
type statusWriter struct {
	http.ResponseWriter
	code  int
	wrote bool
}

func (w *statusWriter) WriteHeader(code int) {
	if !w.wrote {
		w.code = code
		w.wrote = true
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if !w.wrote {
		w.code = http.StatusOK
		w.wrote = true
	}
	return w.ResponseWriter.Write(b)
}

// Unwrap exposes the underlying writer (http.ResponseController
// convention), so SSE streaming still finds the real http.Flusher.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// findFlusher walks the Unwrap chain to the nearest http.Flusher, the
// capability probe streaming handlers run before committing to SSE.
func findFlusher(w http.ResponseWriter) (http.Flusher, bool) {
	for {
		if f, ok := w.(http.Flusher); ok {
			return f, true
		}
		u, ok := w.(interface{ Unwrap() http.ResponseWriter })
		if !ok {
			return nil, false
		}
		w = u.Unwrap()
	}
}

// instrumented wraps the mux with request accounting.
func (s *Server) instrumented(next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		start := time.Now()
		sw := &statusWriter{ResponseWriter: w, code: http.StatusOK}
		next.ServeHTTP(sw, r)
		endpoint := s.endpointLabel(r)
		s.httpMetrics.requests.With(endpoint, strconv.Itoa(sw.code)).Inc()
		s.httpMetrics.latency.With(endpoint).Observe(time.Since(start).Seconds())
	})
}
