package server

// Regression tests for the wire-protocol sweep: 64-bit OIDs round-trip
// through /update and /object, empty interval lists marshal as [] (not
// null), and the answer's class is derived from the snapshot tau the
// backend actually computed over — never from a re-read of the live
// clock racing with concurrent updates.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/bead"
	"repro/internal/core"
	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/sub"
	"repro/internal/trajectory"
)

// stubBackend lets a test script the query results (answer set, sweep
// stats, snapshot tau) independently of the live Tau().
type stubBackend struct {
	liveTau float64
	ansTau  float64
	ans     *query.AnswerSet
	stats   core.Stats

	subOnce sync.Once
	subReg  *sub.Registry
}

func (b *stubBackend) Dim() int                 { return 2 }
func (b *stubBackend) Tau() float64             { return b.liveTau }
func (b *stubBackend) Len() int                 { return 1 }
func (b *stubBackend) Objects() []mod.OID       { return []mod.OID{1} }
func (b *stubBackend) LiveAt(float64) []mod.OID { return []mod.OID{1} }
func (b *stubBackend) Traj(mod.OID) (trajectory.Trajectory, error) {
	return trajectory.Trajectory{}, nil
}
func (b *stubBackend) Apply(mod.Update) error { return nil }
func (b *stubBackend) ApplyBatch(us []mod.Update) (int, error) {
	return len(us), nil
}
func (b *stubBackend) OnUpdate(mod.Listener) {}
func (b *stubBackend) Snapshot() *mod.DB     { return mod.NewDB(2, b.liveTau) }
func (b *stubBackend) KNN(gdist.GDistance, int, float64, float64) (*query.AnswerSet, core.Stats, float64, error) {
	return b.ans, b.stats, b.ansTau, nil
}
func (b *stubBackend) Within(gdist.GDistance, float64, float64, float64) (*query.AnswerSet, core.Stats, float64, error) {
	return b.ans, b.stats, b.ansTau, nil
}
func (b *stubBackend) Alibi(_, _ mod.OID, _, _, _ float64) (bead.Result, float64, error) {
	return bead.Result{}, b.ansTau, nil
}
func (b *stubBackend) PossiblyWithin(geom.Vec, float64, float64, float64, float64) (*query.AnswerSet, float64, error) {
	return b.ans, b.ansTau, nil
}
func (b *stubBackend) Subscriptions() *sub.Registry {
	// The stub is itself a sub.Source; the registry is unused by these
	// tests beyond the server's eager creation.
	b.subOnce.Do(func() { b.subReg = sub.NewRegistry(b, sub.Config{}) })
	return b.subReg
}

// TestLargeOIDRoundTrip: an OID above 2^48 accepted by POST /update must
// resolve on GET /object (a narrower 48-bit parse once 400'd here).
func TestLargeOIDRoundTrip(t *testing.T) {
	ts, _ := newTestServer(t)
	const big = uint64(1)<<52 + 7
	code := postJSON(t, ts.URL+"/update", map[string]interface{}{
		"kind": "new", "oid": big, "tau": 9,
		"a": []float64{1, 0}, "b": []float64{0, 0},
	}, nil)
	if code != 200 {
		t.Fatalf("update with large oid: code %d", code)
	}
	var obj struct {
		OID uint64 `json:"oid"`
	}
	if code := getJSON(t, fmt.Sprintf("%s/object?oid=%d", ts.URL, big), &obj); code != 200 {
		t.Fatalf("GET /object?oid=%d: code %d", big, code)
	}
	if obj.OID != big {
		t.Errorf("object oid = %d, want %d", obj.OID, big)
	}
	// The "o"-prefixed String() form resolves too.
	if code := getJSON(t, fmt.Sprintf("%s/object?oid=o%d", ts.URL, big), &obj); code != 200 {
		t.Errorf("GET /object?oid=o%d: code %d", big, code)
	}
}

// TestEmptyIntervalListMarshalsAsArray: an answered object whose
// interval list is empty must encode as [], not null — clients iterate
// the wire value.
func TestEmptyIntervalListMarshalsAsArray(t *testing.T) {
	ans := query.NewAnswerSet()
	ans.Enter(1, 0) // open membership, no closed intervals yet
	be := &stubBackend{ans: ans}
	ts := httptest.NewServer(New(be, nil))
	defer ts.Close()

	var resp struct {
		Answers map[string]json.RawMessage `json:"answers"`
	}
	code := postJSON(t, ts.URL+"/query/knn", map[string]interface{}{
		"k": 1, "lo": 0, "hi": 10, "point": []float64{0, 0},
	}, &resp)
	if code != 200 {
		t.Fatalf("knn code %d", code)
	}
	raw, ok := resp.Answers["o1"]
	if !ok {
		t.Fatalf("o1 missing from answers: %v", resp.Answers)
	}
	if got := strings.TrimSpace(string(raw)); got != "[]" {
		t.Errorf("empty interval list encodes as %s, want []", got)
	}
}

// TestClassComesFromSnapshotTau: the class in the response must be
// computed against the tau of the snapshot the backend answered over,
// not the live Tau() — the two diverge under concurrent updates.
func TestClassComesFromSnapshotTau(t *testing.T) {
	ans := query.NewAnswerSet()
	ans.Enter(1, 1)
	ans.Leave(1, 2)
	ans.Finish(2)
	// Live clock says 0 (the window [1,2] would look future); the
	// snapshot that produced the answer had tau=100 (the window is past).
	be := &stubBackend{liveTau: 0, ansTau: 100, ans: ans}
	ts := httptest.NewServer(New(be, nil))
	defer ts.Close()

	for _, ep := range []string{"/query/knn", "/query/within"} {
		var resp struct {
			Class string  `json:"class"`
			Tau   float64 `json:"tau"`
		}
		body := map[string]interface{}{"k": 1, "radius": 5, "lo": 1, "hi": 2, "point": []float64{0, 0}}
		if code := postJSON(t, ts.URL+ep, body, &resp); code != 200 {
			t.Fatalf("%s code %d", ep, code)
		}
		if resp.Tau != 100 {
			t.Errorf("%s: tau = %g, want 100 (snapshot's)", ep, resp.Tau)
		}
		if resp.Class != "past" {
			t.Errorf("%s: class = %q, want past (window [1,2] vs snapshot tau 100)", ep, resp.Class)
		}
	}
}

// TestClassTauInvariantUnderConcurrentUpdates drives queries against a
// window the advancing clock sweeps through (future -> continuing ->
// past) and pins the invariant class == Classify(lo, hi, tau) on every
// response. Run under -race in CI.
func TestClassTauInvariantUnderConcurrentUpdates(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.ApplyAll(
		mod.New(1, 0, geom.Of(1, 0), geom.Of(0, 0)),
		mod.New(2, 0.5, geom.Of(0, 1), geom.Of(5, 5)),
	); err != nil {
		t.Fatal(err)
	}
	eng, err := shard.FromDB(db, shard.Config{Shards: 4, Workers: 4})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, nil))
	defer ts.Close()
	url := ts.URL

	const lo, hi = 50.0, 60.0
	done := make(chan struct{})
	go func() {
		defer close(done)
		for tau := 1.0; tau <= 120; tau++ {
			postJSON(t, url+"/update", map[string]interface{}{
				"kind": "chdir", "oid": 1, "tau": tau, "a": []float64{1, 1},
			}, nil)
		}
	}()
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 30; i++ {
				var resp struct {
					Class string  `json:"class"`
					Tau   float64 `json:"tau"`
				}
				code := postJSON(t, url+"/query/knn", map[string]interface{}{
					"k": 1, "lo": lo, "hi": hi, "point": []float64{0, 0},
				}, &resp)
				if code != 200 {
					t.Errorf("knn code %d", code)
					continue
				}
				want, err := query.Classify(lo, hi, resp.Tau)
				if err != nil {
					t.Errorf("classify: %v", err)
					continue
				}
				if resp.Class != want.String() {
					t.Errorf("class = %q but tau = %g classifies as %q", resp.Class, resp.Tau, want)
				}
			}
		}()
	}
	wg.Wait()
	<-done
}

// TestMetricsEndpoint scrapes /metrics after traffic: HTTP series,
// sweep-work series and query-latency histograms must all be present,
// with no duplicate family declarations, and the JSON view must parse.
func TestMetricsEndpoint(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.ApplyAll(
		mod.New(1, 0, geom.Of(0, 0), geom.Of(3, 4)),
		mod.New(2, 0.5, geom.Of(-1, 0), geom.Of(20, 0)),
	); err != nil {
		t.Fatal(err)
	}
	eng := shard.Single(db)
	reg := obs.NewRegistry()
	eng.Instrument(reg)
	ts := httptest.NewServer(NewWithOptions(eng, Options{Metrics: reg}))
	defer ts.Close()

	if code := postJSON(t, ts.URL+"/query/knn", map[string]interface{}{
		"k": 1, "lo": 0, "hi": 30, "point": []float64{0, 0},
	}, nil); code != 200 {
		t.Fatalf("knn code %d", code)
	}
	if code := getJSON(t, ts.URL+"/healthz", nil); code != 200 {
		t.Fatalf("healthz code %d", code)
	}

	resp, err := http.Get(ts.URL + "/metrics")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var buf bytes.Buffer
	if _, err := buf.ReadFrom(resp.Body); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	if body == "" {
		t.Fatal("/metrics returned an empty body")
	}
	for _, want := range []string{
		"mod_http_requests_total{endpoint=\"POST /query/knn\",code=\"200\"} 1",
		"mod_http_request_seconds_bucket",
		"mod_sweep_events_total",
		"mod_query_seconds_bucket{kind=\"knn\"",
		"mod_query_fanout_width_count 1",
	} {
		if !strings.Contains(body, want) {
			t.Errorf("/metrics missing %q", want)
		}
	}
	// Every family is declared exactly once and every sample line has
	// exactly two fields (name{labels} value).
	seen := map[string]bool{}
	for _, line := range strings.Split(strings.TrimSuffix(body, "\n"), "\n") {
		if name, ok := strings.CutPrefix(line, "# TYPE "); ok {
			fam := strings.Fields(name)[0]
			if seen[fam] {
				t.Errorf("duplicate family declaration %q", fam)
			}
			seen[fam] = true
			continue
		}
		if strings.HasPrefix(line, "#") {
			continue
		}
		// name{labels} value — label values may contain spaces, so
		// validate shape as "everything up to the last space" + number.
		i := strings.LastIndex(line, " ")
		if i <= 0 {
			t.Errorf("sample line %q has no value field", line)
			continue
		}
		if _, err := strconv.ParseFloat(line[i+1:], 64); err != nil {
			t.Errorf("sample line %q: value %q does not parse: %v", line, line[i+1:], err)
		}
	}
	if len(seen) == 0 {
		t.Error("no # TYPE declarations in /metrics output")
	}

	// The JSON view parses and carries the same families.
	var js map[string]interface{}
	if code := getJSON(t, ts.URL+"/metrics?format=json", &js); code != 200 {
		t.Fatalf("metrics json code %d", code)
	}
	if _, ok := js["mod_http_requests_total"]; !ok {
		t.Errorf("json view missing mod_http_requests_total: %v", js)
	}
}

// syncBuf is a goroutine-safe log sink.
type syncBuf struct {
	mu sync.Mutex
	b  bytes.Buffer
}

func (s *syncBuf) Write(p []byte) (int, error) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.Write(p)
}

func (s *syncBuf) String() string {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.b.String()
}

// TestSlowQueryLog: with a tiny threshold every query logs one
// structured SLOWQUERY line whose JSON carries the query's shape.
func TestSlowQueryLog(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Apply(mod.New(1, 0, geom.Of(0, 0), geom.Of(3, 4))); err != nil {
		t.Fatal(err)
	}
	var buf syncBuf
	srv := NewWithOptions(shard.Single(db), Options{
		Logger:             log.New(&buf, "", 0),
		SlowQueryThreshold: time.Nanosecond,
	})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	if code := postJSON(t, ts.URL+"/query/within", map[string]interface{}{
		"radius": 6, "lo": 1, "hi": 30, "point": []float64{0, 0},
	}, nil); code != 200 {
		t.Fatalf("within code %d", code)
	}
	var rec slowQueryRecord
	found := false
	for _, line := range strings.Split(buf.String(), "\n") {
		if rest, ok := strings.CutPrefix(line, "SLOWQUERY "); ok {
			if err := json.Unmarshal([]byte(rest), &rec); err != nil {
				t.Fatalf("bad SLOWQUERY json %q: %v", rest, err)
			}
			found = true
		}
	}
	if !found {
		t.Fatalf("no SLOWQUERY line in log:\n%s", buf.String())
	}
	if rec.Endpoint != "/query/within" || rec.Radius != 6 || rec.Lo != 1 || rec.Hi != 30 {
		t.Errorf("slow-query record = %+v", rec)
	}
	if rec.Class == "" || rec.Ms < 0 {
		t.Errorf("slow-query record missing class/ms: %+v", rec)
	}
}
