// Package server exposes a moving object database over HTTP/JSON: a thin
// network layer for feeding chronological updates in and running
// plane-sweep queries, suitable for wiring trackers and dashboards to the
// engine. Used by cmd/modserve; handlers are plain net/http and are
// exercised with httptest.
//
// Endpoints:
//
//	GET  /healthz                 liveness + database header
//	GET  /objects                 OIDs, tau, live count
//	GET  /object?oid=1            one trajectory (pieces + constraint syntax)
//	POST /update                  {"kind":"new|terminate|chdir","oid":..,"tau":..,"a":[..],"b":[..]}
//	POST /query/knn               {"k":..,"lo":..,"hi":..,"point":[..]}
//	POST /query/within            {"radius":..,"lo":..,"hi":..,"point":[..]}
//	GET  /snapshot                full JSON snapshot (mod.SaveJSON format)
//	POST /watch/knn               SSE stream of a live continuing k-NN query
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
)

// Server wraps a DB with HTTP handlers. Queries run on snapshots, so a
// long query never blocks the update path.
type Server struct {
	db  *mod.DB
	mux *http.ServeMux
	log *log.Logger

	watchMu  sync.Mutex
	watchers map[*watcher]struct{}
}

// New builds a server over db. logger may be nil (logging disabled).
func New(db *mod.DB, logger *log.Logger) *Server {
	s := &Server{
		db: db, mux: http.NewServeMux(), log: logger,
		watchers: make(map[*watcher]struct{}),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /objects", s.handleObjects)
	s.mux.HandleFunc("GET /object", s.handleObject)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	s.mux.HandleFunc("POST /query/knn", s.handleKNN)
	s.mux.HandleFunc("POST /query/within", s.handleWithin)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.registerWatchers()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	if s.log != nil {
		s.log.Printf("http %d: %v", code, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(httpError{Error: err.Error()})
}

func (s *Server) ok(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.ok(w, map[string]interface{}{
		"status":  "ok",
		"dim":     s.db.Dim(),
		"tau":     s.db.Tau(),
		"objects": s.db.Len(),
	})
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	oids := s.db.Objects()
	out := struct {
		Tau     float64   `json:"tau"`
		Objects []mod.OID `json:"objects"`
		Live    int       `json:"live"`
	}{Tau: s.db.Tau(), Objects: oids, Live: len(s.db.LiveAt(s.db.Tau()))}
	s.ok(w, out)
}

type jsonTrajPiece struct {
	Start float64   `json:"start"`
	End   *float64  `json:"end,omitempty"`
	A     []float64 `json:"a"`
	B     []float64 `json:"b"`
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	oid, err := strconv.ParseUint(r.URL.Query().Get("oid"), 10, 48)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad oid: %w", err))
		return
	}
	tr, err := s.db.Traj(mod.OID(oid))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	var pieces []jsonTrajPiece
	for _, pc := range tr.Pieces() {
		jp := jsonTrajPiece{Start: pc.Start, A: pc.A, B: pc.B}
		if !math.IsInf(pc.End, 1) {
			end := pc.End
			jp.End = &end
		}
		pieces = append(pieces, jp)
	}
	s.ok(w, struct {
		OID        uint64          `json:"oid"`
		Pieces     []jsonTrajPiece `json:"pieces"`
		Constraint string          `json:"constraint"`
	}{OID: oid, Pieces: pieces, Constraint: tr.String()})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var u mod.Update
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode update: %w", err))
		return
	}
	if err := s.db.Apply(u); err != nil {
		code := http.StatusConflict
		if errors.Is(err, mod.ErrBadOperation) || errors.Is(err, mod.ErrDimMismatch) {
			code = http.StatusBadRequest
		}
		s.fail(w, code, err)
		return
	}
	s.ok(w, map[string]interface{}{"applied": u.String(), "tau": s.db.Tau()})
}

// knnRequest is the body of /query/knn.
type knnRequest struct {
	K     int       `json:"k"`
	Lo    float64   `json:"lo"`
	Hi    float64   `json:"hi"`
	Point []float64 `json:"point"`
}

// answerJSON is the wire form of an AnswerSet.
type answerJSON struct {
	Class   string                    `json:"class"`
	Answers map[string][]intervalJSON `json:"answers"`
	Events  int                       `json:"events"`
}

type intervalJSON struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

func toAnswerJSON(ans *query.AnswerSet, cls query.Class, events int) answerJSON {
	out := answerJSON{Class: cls.String(), Answers: map[string][]intervalJSON{}, Events: events}
	for _, o := range ans.Objects() {
		var ivs []intervalJSON
		for _, iv := range ans.Intervals(o) {
			ivs = append(ivs, intervalJSON{Lo: iv.Lo, Hi: iv.Hi})
		}
		out.Answers[o.String()] = ivs
	}
	return out
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	if len(req.Point) != s.db.Dim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("point has %d components, database dim %d", len(req.Point), s.db.Dim()))
		return
	}
	snap := s.db.Snapshot()
	knn := query.NewKNN(req.K)
	st, err := query.RunPast(snap, gdist.PointSq{Point: geom.Vec(req.Point)}, req.Lo, req.Hi, knn)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cls, _ := query.Classify(req.Lo, req.Hi, snap.Tau())
	s.ok(w, toAnswerJSON(knn.Answer(), cls, st.Events))
}

// withinRequest is the body of /query/within.
type withinRequest struct {
	Radius float64   `json:"radius"`
	Lo     float64   `json:"lo"`
	Hi     float64   `json:"hi"`
	Point  []float64 `json:"point"`
}

func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	var req withinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	if len(req.Point) != s.db.Dim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("point has %d components, database dim %d", len(req.Point), s.db.Dim()))
		return
	}
	if req.Radius < 0 {
		s.fail(w, http.StatusBadRequest, errors.New("negative radius"))
		return
	}
	snap := s.db.Snapshot()
	wq := query.NewWithin(req.Radius * req.Radius)
	st, err := query.RunPast(snap, gdist.PointSq{Point: geom.Vec(req.Point)}, req.Lo, req.Hi, wq)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cls, _ := query.Classify(req.Lo, req.Hi, snap.Tau())
	s.ok(w, toAnswerJSON(wq.Answer(), cls, st.Events))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.db.Snapshot().SaveJSON(w); err != nil && s.log != nil {
		s.log.Printf("snapshot: %v", err)
	}
}
