// Package server exposes a moving object database over HTTP/JSON: a thin
// network layer for feeding chronological updates in and running
// plane-sweep queries, suitable for wiring trackers and dashboards to the
// engine. Used by cmd/modserve; handlers are plain net/http and are
// exercised with httptest.
//
// The handlers speak to a Backend rather than a *mod.DB directly, so the
// same HTTP surface serves either a single database (shard.Single) or a
// hash-partitioned sharded engine with fan-out query execution
// (shard.FromDB, selected by cmd/modserve's -shards flag). Answers are
// identical either way; see internal/shard for the merge arguments.
//
// Endpoints:
//
//	GET  /healthz                 liveness + database header
//	GET  /objects                 OIDs, tau, live count
//	GET  /object?oid=1            one trajectory (pieces + constraint syntax)
//	POST /update                  {"kind":"new|terminate|chdir","oid":..,"tau":..,"a":[..],"b":[..]}
//	POST /update/batch            JSON array of updates, or the binary batch
//	                              codec with Content-Type application/x-mod-updates
//	POST /query/knn               {"k":..,"lo":..,"hi":..,"point":[..]}
//	POST /query/within            {"radius":..,"lo":..,"hi":..,"point":[..]}
//	POST /query/alibi             {"o1":..,"o2":..,"lo":..,"hi":..,"vmax":..} —
//	                              could the two objects have met in [lo,hi],
//	                              given their samples and speed bounds?
//	POST /query/possibly-within   {"radius":..,"lo":..,"hi":..,"point":[..],"vmax":..} —
//	                              which objects could have come within radius
//	                              of point? ("vmax" is the default speed bound
//	                              for objects without a declared one; omit it
//	                              to require declarations.)
//	GET  /snapshot                full JSON snapshot (mod.SaveJSON format);
//	                              ?format=binary for the compact binary snapshot
//	GET  /metrics                 Prometheus exposition (with Options.Metrics)
//	POST /watch/knn               SSE delta stream of a continuing k-NN query
//	POST /watch/within            SSE delta stream of a continuing within query
//
// With Options.Metrics set, every request is accounted per endpoint and
// status, query latency is observed into merge-able histograms, and
// /metrics serves the registry (Prometheus text; ?format=json for the
// expvar-style view). Options.SlowQueryThreshold turns on a structured
// slow-query log on the server's logger.
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strings"
	"time"

	"repro/internal/bead"
	"repro/internal/core"
	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sub"
	"repro/internal/trajectory"
)

// Backend is the storage-and-query engine the HTTP layer serves. The
// canonical implementation is shard.Engine, which covers both the
// unsharded case (one shard adopting a mod.DB) and hash-partitioned
// parallel fan-out (-shards P in cmd/modserve). Keeping the handlers
// behind this interface is what lets later scaling work (batching,
// replication, alternative backends) slot in without touching the
// network layer.
type Backend interface {
	Dim() int
	Tau() float64
	Len() int
	Objects() []mod.OID
	LiveAt(t float64) []mod.OID
	Traj(o mod.OID) (trajectory.Trajectory, error)
	Apply(u mod.Update) error
	// ApplyBatch ingests a batch in one backend round trip (grouped by
	// shard and applied in parallel by sharded backends). It returns
	// how many updates were applied; on error the applied count is the
	// durable prefix per shard, not a rollback.
	ApplyBatch(us []mod.Update) (int, error)
	OnUpdate(l mod.Listener)
	// Snapshot returns a consistent unsharded copy of the full state.
	Snapshot() *mod.DB
	// KNN and Within evaluate the two built-in past/continuing queries
	// over [lo, hi] (fanned out across shards by sharded backends).
	// Besides the answer and the sweep work, they return the tau of the
	// snapshot the answer was computed over: under concurrent updates
	// the live Tau() keeps moving, so classifying the window against it
	// would misstate the answer's frame of reference — handlers must
	// classify against the returned tau.
	KNN(f gdist.GDistance, k int, lo, hi float64) (*query.AnswerSet, core.Stats, float64, error)
	Within(f gdist.GDistance, c float64, lo, hi float64) (*query.AnswerSet, core.Stats, float64, error)
	// Alibi and PossiblyWithin are the uncertainty queries over the
	// bead model (internal/bead): they reason about every movement
	// consistent with the recorded samples and the per-object speed
	// bounds (mod.KindBound), not just the recorded motion itself.
	// defaultVmax applies to objects without a declared bound; negative
	// means "require a declaration". Like KNN/Within they return the
	// tau of the snapshot the answer was computed over.
	Alibi(o1, o2 mod.OID, lo, hi, defaultVmax float64) (bead.Result, float64, error)
	PossiblyWithin(q geom.Vec, dist, lo, hi, defaultVmax float64) (*query.AnswerSet, float64, error)
	// Subscriptions returns the backend's materialized-subscription
	// registry — the engine behind the /watch endpoints. The registry
	// maintains every continuing query incrementally off the update
	// feed and routes deltas only to affected subscriptions, so the
	// server carries one shared evaluation per distinct query instead
	// of one sweep session per connected client.
	Subscriptions() *sub.Registry
}

// Options configures a Server beyond its backend.
type Options struct {
	// Logger receives request errors and the slow-query log; nil
	// disables logging.
	Logger *log.Logger
	// Metrics, when non-nil, turns on HTTP/query instrumentation and
	// the /metrics endpoint serving this registry.
	Metrics *obs.Registry
	// SlowQueryThreshold, when positive, logs a structured SLOWQUERY
	// line for every /query request at least this slow.
	SlowQueryThreshold time.Duration
	// WatchHeartbeat is the interval between ": heartbeat" comment
	// lines on idle /watch SSE streams, keeping proxies and clients
	// from timing the connection out. 0 means the 15s default; a
	// negative value disables heartbeats.
	WatchHeartbeat time.Duration
}

// Server wraps a Backend with HTTP handlers. Queries run on snapshots,
// so a long query never blocks the update path.
type Server struct {
	be      Backend
	mux     *http.ServeMux
	handler http.Handler // mux, wrapped with instrumentation when enabled
	log     *log.Logger

	routes      map[string]bool // fixed paths, for bounded endpoint labels
	httpMetrics *httpMetrics    // nil when uninstrumented
	slowQuery   time.Duration
	heartbeat   time.Duration
}

// New builds a server over be (wrap a plain *mod.DB with
// shard.FromDB(db, shard.Config{}) for the unsharded engine). logger
// may be nil (logging disabled).
func New(be Backend, logger *log.Logger) *Server {
	return NewWithOptions(be, Options{Logger: logger})
}

// NewWithOptions builds a server with observability options.
func NewWithOptions(be Backend, opts Options) *Server {
	s := &Server{
		be: be, mux: http.NewServeMux(), log: opts.Logger,
		routes:    make(map[string]bool),
		slowQuery: opts.SlowQueryThreshold,
		heartbeat: opts.WatchHeartbeat,
	}
	if s.heartbeat == 0 {
		s.heartbeat = defaultWatchHeartbeat
	}
	s.handle("GET /healthz", s.handleHealth)
	s.handle("GET /objects", s.handleObjects)
	s.handle("GET /object", s.handleObject)
	s.handle("POST /update", s.handleUpdate)
	s.handle("POST /update/batch", s.handleUpdateBatch)
	s.handle("POST /query/knn", s.handleKNN)
	s.handle("POST /query/within", s.handleWithin)
	s.handle("POST /query/alibi", s.handleAlibi)
	s.handle("POST /query/possibly-within", s.handlePossiblyWithin)
	s.handle("GET /snapshot", s.handleSnapshot)
	s.handle("POST /watch/knn", s.handleWatchKNN)
	s.handle("POST /watch/within", s.handleWatchWithin)
	// Create the subscription registry up front so its metric series
	// (instrumented by the backend's own Instrument call) are live
	// before the first /watch request.
	s.be.Subscriptions()
	s.handler = s.mux
	if opts.Metrics != nil {
		s.routes["/metrics"] = true
		s.mux.Handle("GET /metrics", opts.Metrics.Handler())
		s.httpMetrics = newHTTPMetrics(opts.Metrics)
		s.handler = s.instrumented(s.mux)
	}
	return s
}

// handle registers a "METHOD /path" pattern and remembers the path for
// endpoint labeling.
func (s *Server) handle(pattern string, h http.HandlerFunc) {
	if _, path, ok := strings.Cut(pattern, " "); ok {
		s.routes[path] = true
	}
	s.mux.HandleFunc(pattern, h)
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.handler.ServeHTTP(w, r)
}

// httpError is the JSON error envelope. Applied is set by the batch
// endpoint so a partially applied batch reports how far it got.
type httpError struct {
	Error   string `json:"error"`
	Applied *int   `json:"applied,omitempty"`
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	if s.log != nil {
		s.log.Printf("http %d: %v", code, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(httpError{Error: err.Error()})
}

// failBatch is fail carrying the partially-applied count.
func (s *Server) failBatch(w http.ResponseWriter, code int, err error, applied int) {
	if s.log != nil {
		s.log.Printf("http %d: %v", code, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(httpError{Error: err.Error(), Applied: &applied})
}

func (s *Server) ok(w http.ResponseWriter, v interface{}) {
	// Encode before touching the ResponseWriter: json.Marshal rejects
	// values a handler let through (notably non-finite floats), and an
	// encoder writing straight to w would fail AFTER the 200 header was
	// sent, handing the client a truncated body with a success status.
	// Buffering turns an encode failure into a clean 500.
	data, err := json.Marshal(v)
	if err != nil {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("encode response: %w", err))
		return
	}
	w.Header().Set("Content-Type", "application/json")
	_, _ = w.Write(append(data, '\n'))
}

// finite rejects NaN/±Inf request parameters before they reach the
// engine: a non-finite window bound or query point either derails the
// sweep or produces an answer JSON cannot encode. Mirrors the /watch
// body validation (sub.Query normalization).
func finite(name string, v float64) error {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return fmt.Errorf("%s is %g, want finite", name, v)
	}
	return nil
}

// finiteVec is finite over a point's components.
func finiteVec(name string, v []float64) error {
	for i, x := range v {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("%s[%d] is %g, want finite", name, i, x)
		}
	}
	return nil
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.ok(w, map[string]interface{}{
		"status":  "ok",
		"dim":     s.be.Dim(),
		"tau":     s.be.Tau(),
		"objects": s.be.Len(),
	})
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	oids := s.be.Objects()
	out := struct {
		Tau     float64   `json:"tau"`
		Objects []mod.OID `json:"objects"`
		Live    int       `json:"live"`
	}{Tau: s.be.Tau(), Objects: oids, Live: len(s.be.LiveAt(s.be.Tau()))}
	s.ok(w, out)
}

type jsonTrajPiece struct {
	Start float64   `json:"start"`
	End   *float64  `json:"end,omitempty"`
	A     []float64 `json:"a"`
	B     []float64 `json:"b"`
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	// Full 64-bit OIDs: POST /update accepts them, so GET /object must
	// resolve them (mod.ParseOID; a narrower parse 400'd on objects
	// that exist).
	oid, err := mod.ParseOID(r.URL.Query().Get("oid"))
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	tr, err := s.be.Traj(oid)
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	var pieces []jsonTrajPiece
	for _, pc := range tr.Pieces() {
		jp := jsonTrajPiece{Start: pc.Start, A: pc.A, B: pc.B}
		if !math.IsInf(pc.End, 1) {
			end := pc.End
			jp.End = &end
		}
		pieces = append(pieces, jp)
	}
	s.ok(w, struct {
		OID        uint64          `json:"oid"`
		Pieces     []jsonTrajPiece `json:"pieces"`
		Constraint string          `json:"constraint"`
	}{OID: uint64(oid), Pieces: pieces, Constraint: tr.String()})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var u mod.Update
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode update: %w", err))
		return
	}
	if err := s.be.Apply(u); err != nil {
		code := http.StatusConflict
		if errors.Is(err, mod.ErrBadOperation) || errors.Is(err, mod.ErrDimMismatch) {
			code = http.StatusBadRequest
		}
		s.fail(w, code, err)
		return
	}
	s.ok(w, map[string]interface{}{"applied": u.String(), "tau": s.be.Tau()})
}

// handleUpdateBatch ingests a JSON array of updates in one request —
// the batch path that amortizes routing, locking, and (under group
// commit) fsyncs across the whole batch. The response reports how many
// updates were applied; on a partial failure the applied prefix stays
// applied (exactly as repeated POST /update would behave) and the
// error names the first rejection.
func (s *Server) handleUpdateBatch(w http.ResponseWriter, r *http.Request) {
	var us []mod.Update
	if ct := r.Header.Get("Content-Type"); strings.HasPrefix(ct, mod.BinaryUpdatesContentType) {
		// Binary batch: the compact framed codec (see internal/mod
		// binary format docs). Decoding is strict — a frame or CRC
		// error rejects the whole batch before anything is applied,
		// unlike a torn journal tail, because an HTTP body has no
		// "crash mid-write" excuse.
		var err error
		if us, err = mod.DecodeUpdatesBinary(r.Body); err != nil {
			s.fail(w, http.StatusBadRequest, fmt.Errorf("decode binary update batch: %w", err))
			return
		}
	} else if err := json.NewDecoder(r.Body).Decode(&us); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode update batch: %w", err))
		return
	}
	s.recordBatchSize(len(us))
	n, err := s.be.ApplyBatch(us)
	if err != nil {
		code := http.StatusConflict
		if errors.Is(err, mod.ErrBadOperation) || errors.Is(err, mod.ErrDimMismatch) {
			code = http.StatusBadRequest
		}
		s.failBatch(w, code, err, n)
		return
	}
	s.ok(w, map[string]interface{}{"applied": n, "tau": s.be.Tau()})
}

// knnRequest is the body of /query/knn.
type knnRequest struct {
	K     int       `json:"k"`
	Lo    float64   `json:"lo"`
	Hi    float64   `json:"hi"`
	Point []float64 `json:"point"`
}

// answerJSON is the wire form of an AnswerSet. Tau is the snapshot
// time the answer was computed over; Class always equals
// query.Classify(lo, hi, Tau) — the invariant the race test pins.
type answerJSON struct {
	Class   string                    `json:"class"`
	Tau     float64                   `json:"tau"`
	Answers map[string][]intervalJSON `json:"answers"`
	Events  int                       `json:"events"`
}

type intervalJSON struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

func toAnswerJSON(ans *query.AnswerSet, cls query.Class, tau float64, events int) answerJSON {
	out := answerJSON{Class: cls.String(), Tau: tau, Answers: map[string][]intervalJSON{}, Events: events}
	for _, o := range ans.Objects() {
		// Start non-nil so an object with an empty interval list
		// marshals as [] — clients iterate the wire value, and null
		// breaks them.
		ivs := []intervalJSON{}
		for _, iv := range ans.Intervals(o) {
			ivs = append(ivs, intervalJSON{Lo: iv.Lo, Hi: iv.Hi})
		}
		out.Answers[o.String()] = ivs
	}
	return out
}

// slowQueryRecord is one structured slow-query log line (logged as
// "SLOWQUERY {json}").
type slowQueryRecord struct {
	Endpoint string  `json:"endpoint"`
	Ms       float64 `json:"ms"`
	Lo       float64 `json:"lo"`
	Hi       float64 `json:"hi"`
	K        int     `json:"k,omitempty"`
	Radius   float64 `json:"radius,omitempty"`
	Events   int     `json:"events"`
	Tau      float64 `json:"tau"`
	Class    string  `json:"class"`
}

// logSlowQuery emits rec if the request exceeded the threshold.
func (s *Server) logSlowQuery(elapsed time.Duration, rec slowQueryRecord) {
	if s.slowQuery <= 0 || elapsed < s.slowQuery || s.log == nil {
		return
	}
	rec.Ms = float64(elapsed.Nanoseconds()) / 1e6
	data, err := json.Marshal(rec)
	if err != nil {
		return
	}
	s.log.Printf("SLOWQUERY %s", data)
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	if len(req.Point) != s.be.Dim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("point has %d components, database dim %d", len(req.Point), s.be.Dim()))
		return
	}
	for _, err := range []error{finite("lo", req.Lo), finite("hi", req.Hi), finiteVec("point", req.Point)} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	start := time.Now()
	ans, st, tau, err := s.be.KNN(gdist.PointSq{Point: geom.Vec(req.Point)}, req.K, req.Lo, req.Hi)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	// Classify against the snapshot's tau, not a re-read of the live
	// Tau(): an update landing mid-query must not relabel the window
	// the answer was actually computed over.
	cls, _ := query.Classify(req.Lo, req.Hi, tau)
	s.logSlowQuery(time.Since(start), slowQueryRecord{
		Endpoint: "/query/knn", Lo: req.Lo, Hi: req.Hi, K: req.K,
		Events: st.Events, Tau: tau, Class: cls.String(),
	})
	s.ok(w, toAnswerJSON(ans, cls, tau, st.Events))
}

// withinRequest is the body of /query/within.
type withinRequest struct {
	Radius float64   `json:"radius"`
	Lo     float64   `json:"lo"`
	Hi     float64   `json:"hi"`
	Point  []float64 `json:"point"`
}

func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	var req withinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	if len(req.Point) != s.be.Dim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("point has %d components, database dim %d", len(req.Point), s.be.Dim()))
		return
	}
	if req.Radius < 0 {
		s.fail(w, http.StatusBadRequest, errors.New("negative radius"))
		return
	}
	for _, err := range []error{finite("lo", req.Lo), finite("hi", req.Hi), finite("radius", req.Radius), finiteVec("point", req.Point)} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	start := time.Now()
	ans, st, tau, err := s.be.Within(gdist.PointSq{Point: geom.Vec(req.Point)}, req.Radius*req.Radius, req.Lo, req.Hi)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cls, _ := query.Classify(req.Lo, req.Hi, tau)
	s.logSlowQuery(time.Since(start), slowQueryRecord{
		Endpoint: "/query/within", Lo: req.Lo, Hi: req.Hi, Radius: req.Radius,
		Events: st.Events, Tau: tau, Class: cls.String(),
	})
	s.ok(w, toAnswerJSON(ans, cls, tau, st.Events))
}

// alibiRequest is the body of /query/alibi. Vmax is the default speed
// bound for objects without a declared one (mod.KindBound); omitting it
// requires every involved object to carry a declaration.
type alibiRequest struct {
	O1   mod.OID  `json:"o1"`
	O2   mod.OID  `json:"o2"`
	Lo   float64  `json:"lo"`
	Hi   float64  `json:"hi"`
	Vmax *float64 `json:"vmax"`
}

// alibiJSON is the wire form of a bead.Result: a certificate, not an
// interval set — Possible=false is a proof the two objects could not
// have met anywhere in the window.
type alibiJSON struct {
	Possible bool     `json:"possible"`
	At       *float64 `json:"at,omitempty"` // earliest possible meeting
	Checked  int      `json:"checked"`      // bead-pair windows examined
	Pruned   int      `json:"pruned"`       // of those, rejected without the kernel
	Tau      float64  `json:"tau"`
	Class    string   `json:"class"`
}

// defaultVmax maps the optional wire field to the backend's sentinel
// convention (negative = require declarations) and validates it.
func defaultVmax(v *float64) (float64, error) {
	if v == nil {
		return -1, nil
	}
	if err := finite("vmax", *v); err != nil {
		return 0, err
	}
	if *v < 0 {
		return 0, fmt.Errorf("vmax is %g, want >= 0", *v)
	}
	return *v, nil
}

func (s *Server) handleAlibi(w http.ResponseWriter, r *http.Request) {
	var req alibiRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	for _, err := range []error{finite("lo", req.Lo), finite("hi", req.Hi)} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	vmax, err := defaultVmax(req.Vmax)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	res, tau, err := s.be.Alibi(req.O1, req.O2, req.Lo, req.Hi, vmax)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cls, _ := query.Classify(req.Lo, req.Hi, tau)
	out := alibiJSON{Possible: res.Possible, Checked: res.Checked, Pruned: res.Pruned, Tau: tau, Class: cls.String()}
	if res.Possible {
		at := res.At
		out.At = &at
	}
	s.logSlowQuery(time.Since(start), slowQueryRecord{
		Endpoint: "/query/alibi", Lo: req.Lo, Hi: req.Hi,
		Tau: tau, Class: cls.String(),
	})
	s.ok(w, out)
}

// possiblyWithinRequest is the body of /query/possibly-within.
type possiblyWithinRequest struct {
	Radius float64   `json:"radius"`
	Lo     float64   `json:"lo"`
	Hi     float64   `json:"hi"`
	Point  []float64 `json:"point"`
	Vmax   *float64  `json:"vmax"`
}

func (s *Server) handlePossiblyWithin(w http.ResponseWriter, r *http.Request) {
	var req possiblyWithinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	if len(req.Point) != s.be.Dim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("point has %d components, database dim %d", len(req.Point), s.be.Dim()))
		return
	}
	if req.Radius < 0 {
		s.fail(w, http.StatusBadRequest, errors.New("negative radius"))
		return
	}
	for _, err := range []error{finite("lo", req.Lo), finite("hi", req.Hi), finite("radius", req.Radius), finiteVec("point", req.Point)} {
		if err != nil {
			s.fail(w, http.StatusBadRequest, err)
			return
		}
	}
	vmax, err := defaultVmax(req.Vmax)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	start := time.Now()
	ans, tau, err := s.be.PossiblyWithin(geom.Vec(req.Point), req.Radius, req.Lo, req.Hi, vmax)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cls, _ := query.Classify(req.Lo, req.Hi, tau)
	s.logSlowQuery(time.Since(start), slowQueryRecord{
		Endpoint: "/query/possibly-within", Lo: req.Lo, Hi: req.Hi, Radius: req.Radius,
		Tau: tau, Class: cls.String(),
	})
	// The uncertainty query is not a sweep, so there is no event count;
	// the envelope stays the same shape as /query/within with Events=0.
	s.ok(w, toAnswerJSON(ans, cls, tau, 0))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	if r.URL.Query().Get("format") == "binary" {
		w.Header().Set("Content-Type", "application/octet-stream")
		if err := s.be.Snapshot().SaveBinary(w); err != nil && s.log != nil {
			s.log.Printf("snapshot: %v", err)
		}
		return
	}
	w.Header().Set("Content-Type", "application/json")
	if err := s.be.Snapshot().SaveJSON(w); err != nil && s.log != nil {
		s.log.Printf("snapshot: %v", err)
	}
}
