// Package server exposes a moving object database over HTTP/JSON: a thin
// network layer for feeding chronological updates in and running
// plane-sweep queries, suitable for wiring trackers and dashboards to the
// engine. Used by cmd/modserve; handlers are plain net/http and are
// exercised with httptest.
//
// The handlers speak to a Backend rather than a *mod.DB directly, so the
// same HTTP surface serves either a single database (shard.Single) or a
// hash-partitioned sharded engine with fan-out query execution
// (shard.FromDB, selected by cmd/modserve's -shards flag). Answers are
// identical either way; see internal/shard for the merge arguments.
//
// Endpoints:
//
//	GET  /healthz                 liveness + database header
//	GET  /objects                 OIDs, tau, live count
//	GET  /object?oid=1            one trajectory (pieces + constraint syntax)
//	POST /update                  {"kind":"new|terminate|chdir","oid":..,"tau":..,"a":[..],"b":[..]}
//	POST /query/knn               {"k":..,"lo":..,"hi":..,"point":[..]}
//	POST /query/within            {"radius":..,"lo":..,"hi":..,"point":[..]}
//	GET  /snapshot                full JSON snapshot (mod.SaveJSON format)
//	POST /watch/knn               SSE stream of a live continuing k-NN query
package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"math"
	"net/http"
	"strconv"
	"sync"

	"repro/internal/core"
	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/trajectory"
)

// Backend is the storage-and-query engine the HTTP layer serves. The
// canonical implementation is shard.Engine, which covers both the
// unsharded case (one shard adopting a mod.DB) and hash-partitioned
// parallel fan-out (-shards P in cmd/modserve). Keeping the handlers
// behind this interface is what lets later scaling work (batching,
// replication, alternative backends) slot in without touching the
// network layer.
type Backend interface {
	Dim() int
	Tau() float64
	Len() int
	Objects() []mod.OID
	LiveAt(t float64) []mod.OID
	Traj(o mod.OID) (trajectory.Trajectory, error)
	Apply(u mod.Update) error
	OnUpdate(l mod.Listener)
	// Snapshot returns a consistent unsharded copy of the full state.
	Snapshot() *mod.DB
	// KNN and Within evaluate the two built-in past/continuing queries
	// over [lo, hi] (fanned out across shards by sharded backends).
	KNN(f gdist.GDistance, k int, lo, hi float64) (*query.AnswerSet, core.Stats, error)
	Within(f gdist.GDistance, c float64, lo, hi float64) (*query.AnswerSet, core.Stats, error)
}

// Server wraps a Backend with HTTP handlers. Queries run on snapshots,
// so a long query never blocks the update path.
type Server struct {
	be  Backend
	mux *http.ServeMux
	log *log.Logger

	watchMu  sync.Mutex
	watchers map[*watcher]struct{}
}

// New builds a server over be (wrap a plain *mod.DB with
// shard.FromDB(db, shard.Config{}) for the unsharded engine). logger
// may be nil (logging disabled).
func New(be Backend, logger *log.Logger) *Server {
	s := &Server{
		be: be, mux: http.NewServeMux(), log: logger,
		watchers: make(map[*watcher]struct{}),
	}
	s.mux.HandleFunc("GET /healthz", s.handleHealth)
	s.mux.HandleFunc("GET /objects", s.handleObjects)
	s.mux.HandleFunc("GET /object", s.handleObject)
	s.mux.HandleFunc("POST /update", s.handleUpdate)
	s.mux.HandleFunc("POST /query/knn", s.handleKNN)
	s.mux.HandleFunc("POST /query/within", s.handleWithin)
	s.mux.HandleFunc("GET /snapshot", s.handleSnapshot)
	s.registerWatchers()
	return s
}

// ServeHTTP implements http.Handler.
func (s *Server) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	s.mux.ServeHTTP(w, r)
}

// httpError is the JSON error envelope.
type httpError struct {
	Error string `json:"error"`
}

func (s *Server) fail(w http.ResponseWriter, code int, err error) {
	if s.log != nil {
		s.log.Printf("http %d: %v", code, err)
	}
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	_ = json.NewEncoder(w).Encode(httpError{Error: err.Error()})
}

func (s *Server) ok(w http.ResponseWriter, v interface{}) {
	w.Header().Set("Content-Type", "application/json")
	_ = json.NewEncoder(w).Encode(v)
}

func (s *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	s.ok(w, map[string]interface{}{
		"status":  "ok",
		"dim":     s.be.Dim(),
		"tau":     s.be.Tau(),
		"objects": s.be.Len(),
	})
}

func (s *Server) handleObjects(w http.ResponseWriter, r *http.Request) {
	oids := s.be.Objects()
	out := struct {
		Tau     float64   `json:"tau"`
		Objects []mod.OID `json:"objects"`
		Live    int       `json:"live"`
	}{Tau: s.be.Tau(), Objects: oids, Live: len(s.be.LiveAt(s.be.Tau()))}
	s.ok(w, out)
}

type jsonTrajPiece struct {
	Start float64   `json:"start"`
	End   *float64  `json:"end,omitempty"`
	A     []float64 `json:"a"`
	B     []float64 `json:"b"`
}

func (s *Server) handleObject(w http.ResponseWriter, r *http.Request) {
	oid, err := strconv.ParseUint(r.URL.Query().Get("oid"), 10, 48)
	if err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("bad oid: %w", err))
		return
	}
	tr, err := s.be.Traj(mod.OID(oid))
	if err != nil {
		s.fail(w, http.StatusNotFound, err)
		return
	}
	var pieces []jsonTrajPiece
	for _, pc := range tr.Pieces() {
		jp := jsonTrajPiece{Start: pc.Start, A: pc.A, B: pc.B}
		if !math.IsInf(pc.End, 1) {
			end := pc.End
			jp.End = &end
		}
		pieces = append(pieces, jp)
	}
	s.ok(w, struct {
		OID        uint64          `json:"oid"`
		Pieces     []jsonTrajPiece `json:"pieces"`
		Constraint string          `json:"constraint"`
	}{OID: oid, Pieces: pieces, Constraint: tr.String()})
}

func (s *Server) handleUpdate(w http.ResponseWriter, r *http.Request) {
	var u mod.Update
	if err := json.NewDecoder(r.Body).Decode(&u); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode update: %w", err))
		return
	}
	if err := s.be.Apply(u); err != nil {
		code := http.StatusConflict
		if errors.Is(err, mod.ErrBadOperation) || errors.Is(err, mod.ErrDimMismatch) {
			code = http.StatusBadRequest
		}
		s.fail(w, code, err)
		return
	}
	s.ok(w, map[string]interface{}{"applied": u.String(), "tau": s.be.Tau()})
}

// knnRequest is the body of /query/knn.
type knnRequest struct {
	K     int       `json:"k"`
	Lo    float64   `json:"lo"`
	Hi    float64   `json:"hi"`
	Point []float64 `json:"point"`
}

// answerJSON is the wire form of an AnswerSet.
type answerJSON struct {
	Class   string                    `json:"class"`
	Answers map[string][]intervalJSON `json:"answers"`
	Events  int                       `json:"events"`
}

type intervalJSON struct {
	Lo float64 `json:"lo"`
	Hi float64 `json:"hi"`
}

func toAnswerJSON(ans *query.AnswerSet, cls query.Class, events int) answerJSON {
	out := answerJSON{Class: cls.String(), Answers: map[string][]intervalJSON{}, Events: events}
	for _, o := range ans.Objects() {
		var ivs []intervalJSON
		for _, iv := range ans.Intervals(o) {
			ivs = append(ivs, intervalJSON{Lo: iv.Lo, Hi: iv.Hi})
		}
		out.Answers[o.String()] = ivs
	}
	return out
}

func (s *Server) handleKNN(w http.ResponseWriter, r *http.Request) {
	var req knnRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	if len(req.Point) != s.be.Dim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("point has %d components, database dim %d", len(req.Point), s.be.Dim()))
		return
	}
	tau := s.be.Tau()
	ans, st, err := s.be.KNN(gdist.PointSq{Point: geom.Vec(req.Point)}, req.K, req.Lo, req.Hi)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cls, _ := query.Classify(req.Lo, req.Hi, tau)
	s.ok(w, toAnswerJSON(ans, cls, st.Events))
}

// withinRequest is the body of /query/within.
type withinRequest struct {
	Radius float64   `json:"radius"`
	Lo     float64   `json:"lo"`
	Hi     float64   `json:"hi"`
	Point  []float64 `json:"point"`
}

func (s *Server) handleWithin(w http.ResponseWriter, r *http.Request) {
	var req withinRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode query: %w", err))
		return
	}
	if len(req.Point) != s.be.Dim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("point has %d components, database dim %d", len(req.Point), s.be.Dim()))
		return
	}
	if req.Radius < 0 {
		s.fail(w, http.StatusBadRequest, errors.New("negative radius"))
		return
	}
	tau := s.be.Tau()
	ans, st, err := s.be.Within(gdist.PointSq{Point: geom.Vec(req.Point)}, req.Radius*req.Radius, req.Lo, req.Hi)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	cls, _ := query.Classify(req.Lo, req.Hi, tau)
	s.ok(w, toAnswerJSON(ans, cls, st.Events))
}

func (s *Server) handleSnapshot(w http.ResponseWriter, r *http.Request) {
	w.Header().Set("Content-Type", "application/json")
	if err := s.be.Snapshot().SaveJSON(w); err != nil && s.log != nil {
		s.log.Printf("snapshot: %v", err)
	}
}
