package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/shard"
)

func newTestServer(t *testing.T) (*httptest.Server, *mod.DB) {
	t.Helper()
	db := mod.NewDB(2, -1)
	if err := db.ApplyAll(
		mod.New(1, 0, geom.Of(0, 0), geom.Of(3, 4)),
		mod.New(2, 0.5, geom.Of(-1, 0), geom.Of(20, 0)),
	); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(shard.Single(db), nil))
	t.Cleanup(ts.Close)
	return ts, db
}

func getJSON(t *testing.T, url string, out interface{}) int {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func postJSON(t *testing.T, url string, body interface{}, out interface{}) int {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(url, "application/json", bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if out != nil {
		if err := json.NewDecoder(resp.Body).Decode(out); err != nil {
			t.Fatalf("decode response of %s: %v", url, err)
		}
	}
	return resp.StatusCode
}

func TestHealthAndObjects(t *testing.T) {
	ts, _ := newTestServer(t)
	var health map[string]interface{}
	if code := getJSON(t, ts.URL+"/healthz", &health); code != 200 {
		t.Fatalf("healthz code %d", code)
	}
	if health["status"] != "ok" || health["objects"].(float64) != 2 {
		t.Errorf("health = %v", health)
	}
	var objs struct {
		Tau     float64  `json:"tau"`
		Objects []uint64 `json:"objects"`
		Live    int      `json:"live"`
	}
	if code := getJSON(t, ts.URL+"/objects", &objs); code != 200 {
		t.Fatalf("objects code %d", code)
	}
	if len(objs.Objects) != 2 || objs.Tau != 0.5 || objs.Live != 2 {
		t.Errorf("objects = %+v", objs)
	}
}

func TestObjectEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var obj struct {
		OID        uint64 `json:"oid"`
		Constraint string `json:"constraint"`
		Pieces     []struct {
			Start float64   `json:"start"`
			A     []float64 `json:"a"`
		} `json:"pieces"`
	}
	if code := getJSON(t, ts.URL+"/object?oid=2", &obj); code != 200 {
		t.Fatalf("object code %d", code)
	}
	if obj.OID != 2 || len(obj.Pieces) != 1 || obj.Pieces[0].A[0] != -1 {
		t.Errorf("object = %+v", obj)
	}
	if !strings.Contains(obj.Constraint, "x = (-1, 0)t") {
		t.Errorf("constraint = %q", obj.Constraint)
	}
	if code := getJSON(t, ts.URL+"/object?oid=99", nil); code != 404 {
		t.Errorf("missing object code %d", code)
	}
	if code := getJSON(t, ts.URL+"/object?oid=abc", nil); code != 400 {
		t.Errorf("bad oid code %d", code)
	}
}

func TestUpdateEndpoint(t *testing.T) {
	ts, db := newTestServer(t)
	var resp map[string]interface{}
	code := postJSON(t, ts.URL+"/update", map[string]interface{}{
		"kind": "chdir", "oid": 1, "tau": 5, "a": []float64{1, 1},
	}, &resp)
	if code != 200 {
		t.Fatalf("update code %d: %v", code, resp)
	}
	if db.Tau() != 5 {
		t.Errorf("tau = %g after update", db.Tau())
	}
	// Chronology violation -> 409.
	code = postJSON(t, ts.URL+"/update", map[string]interface{}{
		"kind": "chdir", "oid": 1, "tau": 3, "a": []float64{1, 1},
	}, nil)
	if code != http.StatusConflict {
		t.Errorf("stale update code %d, want 409", code)
	}
	// Unknown kind -> 400.
	code = postJSON(t, ts.URL+"/update", map[string]interface{}{
		"kind": "warp", "oid": 1, "tau": 9,
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("bad kind code %d, want 400", code)
	}
	// Dimension mismatch -> 400.
	code = postJSON(t, ts.URL+"/update", map[string]interface{}{
		"kind": "new", "oid": 9, "tau": 9, "a": []float64{1}, "b": []float64{1},
	}, nil)
	if code != http.StatusBadRequest {
		t.Errorf("dim mismatch code %d, want 400", code)
	}
}

func TestKNNEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var ans struct {
		Class   string `json:"class"`
		Answers map[string][]struct {
			Lo, Hi float64
		} `json:"answers"`
		Events int `json:"events"`
	}
	code := postJSON(t, ts.URL+"/query/knn", map[string]interface{}{
		"k": 1, "lo": 0.25, "hi": 30, "point": []float64{0, 0},
	}, &ans)
	if code != 200 {
		t.Fatalf("knn code %d", code)
	}
	// The window straddles tau=0.5: a continuing query.
	if ans.Class != "continuing" {
		t.Errorf("class = %q", ans.Class)
	}
	if len(ans.Answers["o1"]) == 0 || len(ans.Answers["o2"]) == 0 {
		t.Errorf("answers = %v", ans.Answers)
	}
	// o2's takeover at 15.5.
	if got := ans.Answers["o2"][0].Lo; got < 15.4 || got > 15.6 {
		t.Errorf("o2 takeover at %g, want ~15.5", got)
	}
	// Bad point dimension.
	if code := postJSON(t, ts.URL+"/query/knn", map[string]interface{}{
		"k": 1, "lo": 1, "hi": 30, "point": []float64{0},
	}, nil); code != 400 {
		t.Errorf("bad point code %d", code)
	}
	// Bad k.
	if code := postJSON(t, ts.URL+"/query/knn", map[string]interface{}{
		"k": 0, "lo": 1, "hi": 30, "point": []float64{0, 0},
	}, nil); code != 400 {
		t.Errorf("k=0 code %d", code)
	}
}

func TestWithinEndpoint(t *testing.T) {
	ts, _ := newTestServer(t)
	var ans struct {
		Answers map[string][]struct{ Lo, Hi float64 } `json:"answers"`
	}
	code := postJSON(t, ts.URL+"/query/within", map[string]interface{}{
		"radius": 6, "lo": 1, "hi": 30, "point": []float64{0, 0},
	}, &ans)
	if code != 200 {
		t.Fatalf("within code %d", code)
	}
	if len(ans.Answers["o1"]) != 1 {
		t.Errorf("o1 (5 away, radius 6): %v", ans.Answers)
	}
	if code := postJSON(t, ts.URL+"/query/within", map[string]interface{}{
		"radius": -1, "lo": 1, "hi": 30, "point": []float64{0, 0},
	}, nil); code != 400 {
		t.Errorf("negative radius code %d", code)
	}
}

func TestSnapshotEndpointRoundTrips(t *testing.T) {
	ts, db := newTestServer(t)
	resp, err := http.Get(ts.URL + "/snapshot")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	back, err := mod.LoadJSON(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != db.Len() || back.Tau() != db.Tau() {
		t.Errorf("snapshot round trip: len %d/%d tau %g/%g",
			back.Len(), db.Len(), back.Tau(), db.Tau())
	}
}

func TestConcurrentQueriesAndUpdates(t *testing.T) {
	ts, _ := newTestServer(t)
	// Hoist the URL: ts contains a mutex, so reading ts.URL inside the
	// goroutines would be an unsynchronized access to a guarded struct.
	url := ts.URL
	done := make(chan error, 8)
	for i := 0; i < 4; i++ {
		go func() {
			var firstErr error
			for j := 0; j < 20; j++ {
				code := postJSON(t, url+"/query/knn", map[string]interface{}{
					"k": 1, "lo": 1, "hi": 30, "point": []float64{0, 0},
				}, nil)
				if code != 200 && firstErr == nil {
					firstErr = fmt.Errorf("query code %d", code)
				}
			}
			done <- firstErr
		}()
	}
	for i := 0; i < 4; i++ {
		i := i
		go func() {
			var firstErr error
			for j := 0; j < 20; j++ {
				// Distinct strictly-increasing taus per goroutine; 409s
				// from races are fine, 400/500s are not.
				tau := 10 + float64(i*20+j)
				code := postJSON(t, url+"/update", map[string]interface{}{
					"kind": "chdir", "oid": 1, "tau": tau, "a": []float64{1, 0},
				}, nil)
				if code != 200 && code != http.StatusConflict && firstErr == nil {
					firstErr = fmt.Errorf("update code %d", code)
				}
			}
			done <- firstErr
		}()
	}
	for i := 0; i < 8; i++ {
		if err := <-done; err != nil {
			t.Error(err)
		}
	}
}
