package server

// Concurrency stress: hammer a sharded backend with interleaved
// POST /update and POST /query/knn (+ /query/within) traffic. The test
// asserts nothing clever about answers — its job is to drive the
// fan-out, routing, snapshot and journal-listener paths hard enough
// that `go test -race ./internal/server/...` (a tier-1 gate) would
// catch unsynchronized state.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"sync"
	"testing"

	"repro/internal/mod"
	"repro/internal/shard"
	"repro/internal/workload"
)

func TestStressInterleavedUpdatesAndQueries(t *testing.T) {
	const shards = 4
	db, err := workload.ConvergingMovers(workload.Config{Seed: 17, N: 80})
	if err != nil {
		t.Fatal(err)
	}
	us, err := workload.Stream(db, workload.StreamConfig{Seed: 18, Count: 240, From: 1, To: 30})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := shard.FromDB(db, shard.Config{Shards: shards, Workers: shards})
	if err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(eng, nil))
	defer ts.Close()

	post := func(path string, body interface{}) (int, error) {
		data, err := json.Marshal(body)
		if err != nil {
			return 0, err
		}
		resp, err := http.Post(ts.URL+path, "application/json", bytes.NewReader(data))
		if err != nil {
			return 0, err
		}
		_ = resp.Body.Close()
		return resp.StatusCode, nil
	}

	// Partition the chronological stream by shard so each updater
	// goroutine keeps its shard's chronology while racing the others.
	groups := make([][]mod.Update, shards)
	for _, u := range us {
		i := eng.ShardOf(u.O)
		groups[i] = append(groups[i], u)
	}
	var wg sync.WaitGroup
	errCh := make(chan error, shards+3)
	for i, g := range groups {
		wg.Add(1)
		go func(i int, g []mod.Update) {
			defer wg.Done()
			for _, u := range g {
				code, err := post("/update", u)
				if err != nil {
					errCh <- err
					return
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("shard %d: update %s -> HTTP %d", i, u, code)
					return
				}
			}
		}(i, g)
	}
	for q := 0; q < 3; q++ {
		wg.Add(1)
		go func(q int) {
			defer wg.Done()
			for r := 0; r < 10; r++ {
				code, err := post("/query/knn", map[string]interface{}{
					"k": 1 + q, "lo": 0, "hi": 20, "point": []float64{float64(10 * q), 0},
				})
				if err != nil {
					errCh <- err
					return
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("querier %d: knn -> HTTP %d", q, code)
					return
				}
				code, err = post("/query/within", map[string]interface{}{
					"radius": 300, "lo": 0, "hi": 20, "point": []float64{0, float64(5 * q)},
				})
				if err != nil {
					errCh <- err
					return
				}
				if code != http.StatusOK {
					errCh <- fmt.Errorf("querier %d: within -> HTTP %d", q, code)
					return
				}
			}
		}(q)
	}
	wg.Wait()
	close(errCh)
	for err := range errCh {
		t.Error(err)
	}
	// Everything applied: the aggregate view reflects the full stream.
	var health struct {
		Objects int     `json:"objects"`
		Tau     float64 `json:"tau"`
	}
	resp, err := http.Get(ts.URL + "/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&health); err != nil {
		t.Fatal(err)
	}
	if health.Objects != eng.Len() || health.Objects < 80 {
		t.Fatalf("healthz reports %d objects (engine %d)", health.Objects, eng.Len())
	}
	if health.Tau != us[len(us)-1].Tau {
		t.Fatalf("tau = %g, want %g (last update)", health.Tau, us[len(us)-1].Tau)
	}
}
