package server

// Live continuing queries over HTTP: POST /watch/knn opens a
// server-sent-events stream that reports the k-NN answer whenever it
// changes, maintained eagerly by a plane-sweep session that ingests the
// database's update feed (the paper's continuing-query evaluation, pushed
// to a network client).

import (
	"context"
	"encoding/json"
	"fmt"
	"math"
	"net/http"
	"sync"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
)

// watchRequest is the body of /watch/knn.
type watchRequest struct {
	K int `json:"k"`
	// Hi bounds the watch; 0 means watch indefinitely (bounded by the
	// server's maxWatchHorizon).
	Hi    float64   `json:"hi"`
	Point []float64 `json:"point"`
}

// watchEvent is one SSE payload.
type watchEvent struct {
	T       float64  `json:"t"`
	Nearest []string `json:"nearest"`
	Done    bool     `json:"done,omitempty"`
	Error   string   `json:"error,omitempty"`
}

// maxWatchHorizon bounds open-ended watches.
const maxWatchHorizon = 1e9

// watcher is one live continuing-query session.
type watcher struct {
	mu   sync.Mutex
	sess *query.Session
	knn  *query.KNN
	hi   float64
	last string
	ch   chan watchEvent
	dead bool
	// final is the terminal event, delivered by the stream reader after
	// the channel closes — never through the lossy non-blocking emit, so
	// a slow client always sees it (see finish).
	final *watchEvent
}

// registerWatchers wires the update fan-out; called from New.
func (s *Server) registerWatchers() {
	s.handle("POST /watch/knn", s.handleWatchKNN)
	s.be.OnUpdate(func(u mod.Update) {
		s.watchMu.Lock()
		ws := make([]*watcher, 0, len(s.watchers))
		for w := range s.watchers {
			ws = append(ws, w)
		}
		s.watchMu.Unlock()
		for _, w := range ws {
			w.apply(u)
		}
	})
}

// apply feeds one database update into the watcher's session.
func (w *watcher) apply(u mod.Update) {
	w.mu.Lock()
	defer w.mu.Unlock()
	if w.dead {
		return
	}
	if u.Tau >= w.hi {
		w.finish(watchEvent{T: w.hi, Done: true})
		return
	}
	if err := w.sess.Apply(u); err != nil {
		w.finish(watchEvent{T: u.Tau, Error: err.Error(), Done: true})
		return
	}
	w.report(u.Tau)
}

// report emits an event when the current answer changed.
func (w *watcher) report(t float64) {
	cur := w.knn.Current()
	names := make([]string, len(cur))
	for i, o := range cur {
		names[i] = o.String()
	}
	key := fmt.Sprint(names)
	if key == w.last {
		return
	}
	w.last = key
	w.emit(watchEvent{T: t, Nearest: names})
}

// finish ends the stream with the terminal event ev. The event is NOT
// sent through the lossy emit: with a full buffer a non-blocking send
// drops it, and the client would see its stream close without ever
// learning the watch completed. Instead it is parked in w.final and
// the channel is closed; the reader drains the buffer and then
// delivers it, guaranteeing the done record arrives exactly once.
func (w *watcher) finish(ev watchEvent) {
	if w.dead {
		return
	}
	w.dead = true
	w.final = &ev
	close(w.ch)
}

// emit sends without blocking the update path; a slow client loses
// intermediate events but always gets the latest state next (and the
// terminal event is delivered separately — see finish).
func (w *watcher) emit(ev watchEvent) {
	select {
	case w.ch <- ev:
	default:
	}
}

// takeFinal returns the parked terminal event, if any.
func (w *watcher) takeFinal() *watchEvent {
	w.mu.Lock()
	defer w.mu.Unlock()
	return w.final
}

// markDead stops further session feeding (client gone or write error).
func (w *watcher) markDead() {
	w.mu.Lock()
	w.dead = true
	w.mu.Unlock()
}

// stream pumps buffered events into enc until the watch ends, then
// delivers the terminal event; it returns when the stream is done or
// ctx is cancelled. enc reports whether the write succeeded.
func (w *watcher) stream(ctx context.Context, enc func(watchEvent) bool) {
	for {
		select {
		case <-ctx.Done():
			w.markDead()
			return
		case ev, open := <-w.ch:
			if !open {
				// Buffer drained; the terminal event is delivered here,
				// not via emit, so a full buffer can't drop it.
				if fin := w.takeFinal(); fin != nil {
					enc(*fin)
				}
				return
			}
			if !enc(ev) {
				w.markDead()
				return
			}
		}
	}
}

func (s *Server) handleWatchKNN(w http.ResponseWriter, r *http.Request) {
	var req watchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode watch: %w", err))
		return
	}
	if len(req.Point) != s.be.Dim() {
		s.fail(w, http.StatusBadRequest,
			fmt.Errorf("point has %d components, database dim %d", len(req.Point), s.be.Dim()))
		return
	}
	hi := req.Hi
	if hi == 0 { //modlint:allow floatcmp -- unset-field sentinel: absent JSON "hi" decodes to exactly 0
		hi = maxWatchHorizon
	}
	lo := math.Nextafter(s.be.Tau(), math.Inf(1))
	if hi <= lo {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("watch horizon %g not after now %g", hi, lo))
		return
	}
	knn := query.NewKNN(req.K)
	// The session sweeps a full consistent snapshot (continuing queries
	// are global; a sharded backend merges one on demand) and is then fed
	// the live update stream via the backend's listener hook.
	sess, err := query.NewSession(s.be.Snapshot(), gdist.PointSq{Point: geom.Vec(req.Point)}, lo, hi, knn)
	if err != nil {
		s.fail(w, http.StatusBadRequest, err)
		return
	}
	wt := &watcher{sess: sess, knn: knn, hi: hi, ch: make(chan watchEvent, 64)}
	s.watchMu.Lock()
	s.watchers[wt] = struct{}{}
	s.watchMu.Unlock()
	defer func() {
		s.watchMu.Lock()
		delete(s.watchers, wt)
		s.watchMu.Unlock()
	}()

	// The metrics middleware wraps w; walk the Unwrap chain for the
	// real flusher.
	flusher, ok := findFlusher(w)
	if !ok {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	// Initial answer, reported at the database's current time (lo is a
	// nudge past it, which would render as an ulp-noise timestamp).
	wt.mu.Lock()
	wt.report(s.be.Tau())
	wt.mu.Unlock()

	enc := func(ev watchEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "data: %s\n\n", data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}
	wt.stream(r.Context(), enc)
}
