package server

// Live continuing queries over HTTP: POST /watch/knn and
// POST /watch/within open server-sent-events streams of answer deltas,
// served from the backend's materialized-subscription registry
// (internal/sub). The registry maintains one shared incremental
// evaluation per distinct query and routes each database update only to
// the subscriptions it can affect, so a watch costs the server a
// bounded delivery queue, not a private plane-sweep session.
//
// Wire protocol: each SSE record carries the delta's sequence number as
// its "id:" line (monotonic per stream, so clients can detect gaps and
// resubscribe) and a JSON body:
//
//	id: 7
//	data: {"t":12.5,"add":["o3"],"remove":["o1"],"order":["o3","o2"]}
//
// The first record is always a resync (the full answer at subscription
// time); a record with "resync" replaces the client's state instead of
// patching it — the server coalesces to one when a slow client lets its
// queue overflow. "order" is the full k-NN rank order whenever
// membership or rank changed (within answers are unordered and never
// carry it). A record with "done" is terminal: horizon reached, or
// "error" says why the watch ended. Idle streams carry ": heartbeat"
// comment lines every Options.WatchHeartbeat so proxies keep the
// connection alive.

import (
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"time"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/sub"
)

// defaultWatchHeartbeat keeps idle SSE connections alive through
// proxies with conservative idle timeouts.
const defaultWatchHeartbeat = 15 * time.Second

// watchRequest is the body of /watch/knn and /watch/within (K for the
// former, Radius for the latter).
type watchRequest struct {
	K      int     `json:"k,omitempty"`
	Radius float64 `json:"radius,omitempty"`
	// Hi bounds the watch; 0 means watch indefinitely (bounded by the
	// registry's maximum horizon).
	Hi    float64   `json:"hi"`
	Point []float64 `json:"point"`
}

// watchEvent is one SSE payload: a delta against the client's current
// answer set (or a full replacement when Resync is set).
type watchEvent struct {
	T      float64  `json:"t"`
	Add    []string `json:"add,omitempty"`
	Remove []string `json:"remove,omitempty"`
	// Order is the complete k-NN rank order after this delta; within
	// watches never set it.
	Order  []string `json:"order,omitempty"`
	Resync bool     `json:"resync,omitempty"`
	Done   bool     `json:"done,omitempty"`
	Error  string   `json:"error,omitempty"`
}

func oidNames(os []mod.OID) []string {
	if len(os) == 0 {
		return nil
	}
	out := make([]string, len(os))
	for i, o := range os {
		out[i] = o.String()
	}
	return out
}

func deltaEvent(d sub.Delta) watchEvent {
	return watchEvent{
		T:      d.T,
		Add:    oidNames(d.Add),
		Remove: oidNames(d.Remove),
		Order:  oidNames(d.Order),
		Resync: d.Resync,
		Done:   d.Done,
		Error:  d.Err,
	}
}

func (s *Server) handleWatchKNN(w http.ResponseWriter, r *http.Request) {
	var req watchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode watch: %w", err))
		return
	}
	s.serveWatch(w, r, sub.Query{
		Kind:  sub.KNN,
		K:     req.K,
		Point: geom.Vec(req.Point),
		Hi:    req.Hi,
	})
}

func (s *Server) handleWatchWithin(w http.ResponseWriter, r *http.Request) {
	var req watchRequest
	if err := json.NewDecoder(r.Body).Decode(&req); err != nil {
		s.fail(w, http.StatusBadRequest, fmt.Errorf("decode watch: %w", err))
		return
	}
	s.serveWatch(w, r, sub.Query{
		Kind:   sub.Within,
		Radius: req.Radius,
		Point:  geom.Vec(req.Point),
		Hi:     req.Hi,
	})
}

// serveWatch subscribes to q and pumps the stream's deltas to the
// client as SSE records until the watch completes, the client goes
// away, or the registry evicts the stream for falling behind.
func (s *Server) serveWatch(w http.ResponseWriter, r *http.Request, q sub.Query) {
	st, err := s.be.Subscriptions().Subscribe(q)
	if err != nil {
		code := http.StatusBadRequest
		if errors.Is(err, sub.ErrClosed) {
			code = http.StatusServiceUnavailable
		}
		s.fail(w, code, err)
		return
	}
	defer st.Cancel()

	// The metrics middleware wraps w; walk the Unwrap chain for the
	// real flusher.
	flusher, ok := findFlusher(w)
	if !ok {
		s.fail(w, http.StatusInternalServerError, fmt.Errorf("streaming unsupported"))
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-cache")
	w.WriteHeader(http.StatusOK)

	send := func(seq uint64, ev watchEvent) bool {
		data, err := json.Marshal(ev)
		if err != nil {
			return false
		}
		if _, err := fmt.Fprintf(w, "id: %d\ndata: %s\n\n", seq, data); err != nil {
			return false
		}
		flusher.Flush()
		return true
	}

	// The initial full answer, as a resync record at the subscription's
	// sequence number; every later delta carries a larger id.
	lastSeq := st.InitialSeq()
	t0, initial := st.Initial()
	init := watchEvent{T: t0, Add: oidNames(initial), Resync: true}
	if q.Kind == sub.KNN {
		init.Order = init.Add
	}
	if !send(lastSeq, init) {
		return
	}

	// drain pops queued deltas into the response; it reports false when
	// a write fails (client gone).
	drain := func() bool {
		for {
			d, ok := st.Pop()
			if !ok {
				return true
			}
			lastSeq = d.Seq
			if !send(d.Seq, deltaEvent(d)) {
				return false
			}
		}
	}

	var beat <-chan time.Time
	if s.heartbeat > 0 {
		tick := time.NewTicker(s.heartbeat)
		defer tick.Stop()
		beat = tick.C
	}
	for {
		select {
		case <-r.Context().Done():
			return
		case <-beat:
			if _, err := fmt.Fprint(w, ": heartbeat\n\n"); err != nil {
				return
			}
			flusher.Flush()
		case <-st.Ready():
			if !drain() {
				return
			}
		case <-st.Done():
			// Deliver the queued tail (a horizon completion ends with a
			// done-marked delta in the queue), then surface an abnormal
			// termination — eviction, registry shutdown — as a terminal
			// error record so the client never sees a silent close.
			if !drain() {
				return
			}
			if err := st.Err(); err != nil {
				send(lastSeq+1, watchEvent{T: s.be.Tau(), Done: true, Error: err.Error()})
			}
			return
		}
	}
}
