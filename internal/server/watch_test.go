package server

import (
	"bufio"
	"bytes"
	"encoding/json"
	"math"
	"net/http"
	"net/http/httptest"
	"sort"
	"strconv"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/shard"
)

// sseRecord is one parsed SSE record: the id line plus the JSON body.
type sseRecord struct {
	id uint64
	ev watchEvent
}

// sseReader incrementally parses an SSE response body.
type sseReader struct {
	t     *testing.T
	body  *bufio.Reader
	beats int // ": heartbeat" comments seen
}

// next reads records until n arrive, a done record arrives, or the
// deadline passes.
func (r *sseReader) next(n int) []sseRecord {
	r.t.Helper()
	var out []sseRecord
	var id uint64
	deadline := time.Now().Add(10 * time.Second)
	for len(out) < n && time.Now().Before(deadline) {
		line, err := r.body.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimSpace(line)
		switch {
		case strings.HasPrefix(line, ": heartbeat"):
			r.beats++
		case strings.HasPrefix(line, "id: "):
			v, err := strconv.ParseUint(strings.TrimPrefix(line, "id: "), 10, 64)
			if err != nil {
				r.t.Fatalf("bad id line %q: %v", line, err)
			}
			id = v
		case strings.HasPrefix(line, "data: "):
			var ev watchEvent
			if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
				r.t.Fatalf("bad event %q: %v", line, err)
			}
			out = append(out, sseRecord{id: id, ev: ev})
			if ev.Done {
				return out
			}
		}
	}
	return out
}

// watchClient applies a delta stream the way a real client would:
// resyncs replace the state, add/remove patch it, order overrides the
// k-NN ranking.
type watchClient struct {
	set   map[string]bool
	order []string
}

func newWatchClient() *watchClient { return &watchClient{set: map[string]bool{}} }

func (c *watchClient) apply(t *testing.T, ev watchEvent) {
	t.Helper()
	if ev.Resync {
		c.set = map[string]bool{}
		for _, o := range ev.Add {
			c.set[o] = true
		}
		c.order = ev.Order
		return
	}
	for _, o := range ev.Remove {
		if !c.set[o] {
			t.Fatalf("delta removes absent %s", o)
		}
		delete(c.set, o)
	}
	for _, o := range ev.Add {
		if c.set[o] {
			t.Fatalf("delta re-adds present %s", o)
		}
		c.set[o] = true
	}
	if ev.Order != nil {
		c.order = ev.Order
	}
}

func (c *watchClient) members() []string {
	out := make([]string, 0, len(c.set))
	for o := range c.set {
		out = append(out, o)
	}
	sort.Strings(out)
	return out
}

// openWatch POSTs a watch request and returns the live SSE reader.
func openWatch(t *testing.T, url, endpoint string, body watchRequest) (*sseReader, func()) {
	t.Helper()
	data, err := json.Marshal(body)
	if err != nil {
		t.Fatal(err)
	}
	req, err := http.NewRequest("POST", url+endpoint, bytes.NewReader(data))
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != 200 {
		defer resp.Body.Close()
		t.Fatalf("watch %s code %d", endpoint, resp.StatusCode)
	}
	return &sseReader{t: t, body: bufio.NewReader(resp.Body)}, func() { _ = resp.Body.Close() }
}

func TestWatchKNNStreamsDeltas(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Apply(mod.New(1, 0, geom.Of(0, 0), geom.Of(10, 0))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(shard.Single(db), nil))
	defer ts.Close()

	r, closeBody := openWatch(t, ts.URL, "/watch/knn", watchRequest{K: 1, Hi: 1000, Point: []float64{0, 0}})
	defer closeBody()
	cl := newWatchClient()

	recs := r.next(1)
	if len(recs) != 1 || !recs[0].ev.Resync {
		t.Fatalf("initial record %+v", recs)
	}
	cl.apply(t, recs[0].ev)
	if len(cl.order) != 1 || cl.order[0] != "o1" {
		t.Fatalf("initial answer %v", cl.order)
	}
	lastID := recs[0].id

	// A closer object appears: the watch must push a delta handing the
	// rank to o2.
	if err := db.Apply(mod.New(2, 5, geom.Of(0, 0), geom.Of(1, 1))); err != nil {
		t.Fatal(err)
	}
	recs = r.next(1)
	if len(recs) != 1 {
		t.Fatalf("no delta after new object")
	}
	if recs[0].id <= lastID {
		t.Fatalf("id not monotonic: %d after %d", recs[0].id, lastID)
	}
	lastID = recs[0].id
	cl.apply(t, recs[0].ev)
	if len(cl.order) != 1 || cl.order[0] != "o2" {
		t.Fatalf("after new: order %v (event %+v)", cl.order, recs[0].ev)
	}

	// It terminates: the answer reverts to o1.
	if err := db.Apply(mod.Terminate(2, 8)); err != nil {
		t.Fatal(err)
	}
	recs = r.next(1)
	if len(recs) != 1 || recs[0].id <= lastID {
		t.Fatalf("after terminate: %+v (lastID %d)", recs, lastID)
	}
	cl.apply(t, recs[0].ev)
	if len(cl.order) != 1 || cl.order[0] != "o1" {
		t.Fatalf("after terminate: order %v", cl.order)
	}
}

// TestWatchWithinStreamsDeltas is the /watch/within walkthrough: the
// membership set tracks objects entering and leaving the ball, and the
// stream finishes with a done record at the horizon.
func TestWatchWithinStreamsDeltas(t *testing.T) {
	db := mod.NewDB(2, -1)
	// o1 sits inside the ball; o2 is far away and stationary.
	if err := db.ApplyAll(
		mod.New(1, 0, geom.Of(0, 0), geom.Of(1, 0)),
		mod.New(2, 0.5, geom.Of(0, 0), geom.Of(100, 0)),
	); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(shard.Single(db), nil))
	defer ts.Close()

	r, closeBody := openWatch(t, ts.URL, "/watch/within", watchRequest{Radius: 5, Hi: 50, Point: []float64{0, 0}})
	defer closeBody()
	cl := newWatchClient()

	recs := r.next(1)
	if len(recs) != 1 || !recs[0].ev.Resync {
		t.Fatalf("initial record %+v", recs)
	}
	cl.apply(t, recs[0].ev)
	if got := cl.members(); len(got) != 1 || got[0] != "o1" {
		t.Fatalf("initial members %v", got)
	}

	// o2 starts moving toward the center at speed 10: it crosses into
	// the ball at t = 10.5 and out again at t = 11.5. Those are kinetic
	// events between updates — they surface, exactly stamped, when the
	// next update advances the registry's virtual time past them.
	if err := db.Apply(mod.ChDir(2, 1, geom.Of(-10, 0))); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(mod.ChDir(2, 20, geom.Of(0, 0))); err != nil {
		t.Fatal(err)
	}
	recs = r.next(2)
	if len(recs) != 2 {
		t.Fatalf("want entry+exit deltas, got %+v", recs)
	}
	cl.apply(t, recs[0].ev)
	if got := cl.members(); len(got) != 2 {
		t.Fatalf("members after entry %v (event %+v)", got, recs[0].ev)
	}
	if math.Abs(recs[0].ev.T-10.5) > 1e-9 {
		t.Errorf("entry delta at t=%g, want 10.5", recs[0].ev.T)
	}
	cl.apply(t, recs[1].ev)
	if got := cl.members(); len(got) != 1 || got[0] != "o1" {
		t.Fatalf("members after exit %v (event %+v)", got, recs[1].ev)
	}
	if math.Abs(recs[1].ev.T-11.5) > 1e-9 {
		t.Errorf("exit delta at t=%g, want 11.5", recs[1].ev.T)
	}

	// An update beyond the horizon finishes the watch; the terminal
	// record is done with no error.
	if err := db.Apply(mod.ChDir(1, 60, geom.Of(1, 0))); err != nil {
		t.Fatal(err)
	}
	recs = r.next(10)
	if len(recs) == 0 {
		t.Fatal("no records after horizon")
	}
	last := recs[len(recs)-1]
	for _, rec := range recs {
		cl.apply(t, rec.ev)
	}
	if !last.ev.Done || last.ev.Error != "" {
		t.Fatalf("terminal record %+v", last.ev)
	}
	if last.ev.T != 50 {
		t.Errorf("done at t=%g, want horizon 50", last.ev.T)
	}
}

// TestWatchValidation pins the 400 responses: malformed geometry
// (NaN/Inf point components), malformed horizons (negative, NaN), bad
// k/radius/dimension, and a horizon not after now must all be rejected
// at subscribe time, before any stream is opened.
func TestWatchValidation(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Apply(mod.New(1, 0, geom.Of(0, 0), geom.Of(10, 0))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(shard.Single(db), nil))
	defer ts.Close()

	nan, inf := math.NaN(), math.Inf(1)
	cases := []struct {
		endpoint string
		body     watchRequest
	}{
		{"/watch/knn", watchRequest{K: 0, Hi: 100, Point: []float64{0, 0}}},           // bad k
		{"/watch/knn", watchRequest{K: -3, Hi: 100, Point: []float64{0, 0}}},          // negative k
		{"/watch/knn", watchRequest{K: 1, Hi: 100, Point: []float64{0}}},              // bad dim
		{"/watch/knn", watchRequest{K: 1, Hi: -10, Point: []float64{0, 0}}},           // negative horizon
		{"/watch/knn", watchRequest{K: 1, Hi: nan, Point: []float64{0, 0}}},           // NaN horizon
		{"/watch/knn", watchRequest{K: 1, Hi: inf, Point: []float64{0, 0}}},           // Inf horizon
		{"/watch/knn", watchRequest{K: 1, Hi: 100, Point: []float64{nan, 0}}},         // NaN component
		{"/watch/knn", watchRequest{K: 1, Hi: 100, Point: []float64{0, inf}}},         // Inf component
		{"/watch/within", watchRequest{Radius: -1, Hi: 100, Point: []float64{0, 0}}},  // negative radius
		{"/watch/within", watchRequest{Radius: nan, Hi: 100, Point: []float64{0, 0}}}, // NaN radius
		{"/watch/within", watchRequest{Radius: inf, Hi: 100, Point: []float64{0, 0}}}, // Inf radius
		{"/watch/within", watchRequest{Radius: 5, Hi: 100, Point: []float64{nan, 0}}}, // NaN component
	}
	for _, c := range cases {
		// Rendered by hand: encoding/json cannot marshal NaN/Inf, but a
		// non-Go client can still put those tokens (or an overflowing
		// 1e999) on the wire; whichever layer catches them, the answer
		// must be 400, never a 200 with a poisoned subscription.
		data := buildWatchJSON(c.body)
		resp, err := http.Post(ts.URL+c.endpoint, "application/json", strings.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("%s %s code %d, want 400", c.endpoint, data, resp.StatusCode)
		}
	}

	// A horizon at or before the database's current time is rejected.
	if err := db.Apply(mod.ChDir(1, 20, geom.Of(1, 0))); err != nil {
		t.Fatal(err)
	}
	resp, err := http.Post(ts.URL+"/watch/knn", "application/json",
		strings.NewReader(`{"k":1,"hi":10,"point":[0,0]}`))
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != 400 {
		t.Errorf("past-horizon watch code %d, want 400", resp.StatusCode)
	}
}

// buildWatchJSON renders a watchRequest as raw JSON, writing NaN and
// Inf as bare tokens the way a non-Go client could.
func buildWatchJSON(r watchRequest) string {
	num := func(f float64) string {
		switch {
		case math.IsNaN(f):
			return "NaN"
		case math.IsInf(f, 1):
			return "Infinity"
		case math.IsInf(f, -1):
			return "-Infinity"
		}
		return strconv.FormatFloat(f, 'g', -1, 64)
	}
	parts := []string{}
	if r.K != 0 {
		parts = append(parts, `"k":`+strconv.Itoa(r.K))
	}
	if r.Radius != 0 {
		parts = append(parts, `"radius":`+num(r.Radius))
	}
	parts = append(parts, `"hi":`+num(r.Hi))
	comps := make([]string, len(r.Point))
	for i, p := range r.Point {
		comps[i] = num(p)
	}
	parts = append(parts, `"point":[`+strings.Join(comps, ",")+`]`)
	return "{" + strings.Join(parts, ",") + "}"
}

// TestWatchHeartbeat: an idle stream carries ": heartbeat" comments at
// the configured interval.
func TestWatchHeartbeat(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Apply(mod.New(1, 0, geom.Of(0, 0), geom.Of(10, 0))); err != nil {
		t.Fatal(err)
	}
	srv := NewWithOptions(shard.Single(db), Options{WatchHeartbeat: 20 * time.Millisecond})
	ts := httptest.NewServer(srv)
	defer ts.Close()

	r, closeBody := openWatch(t, ts.URL, "/watch/knn", watchRequest{K: 1, Hi: 1000, Point: []float64{0, 0}})
	defer closeBody()
	_ = r.next(1) // initial record

	deadline := time.Now().Add(5 * time.Second)
	for r.beats < 2 && time.Now().Before(deadline) {
		line, err := r.body.ReadString('\n')
		if err != nil {
			break
		}
		if strings.HasPrefix(strings.TrimSpace(line), ": heartbeat") {
			r.beats++
		}
	}
	if r.beats < 2 {
		t.Fatalf("saw %d heartbeats, want >= 2", r.beats)
	}
}

// TestWatchSharedSubscription: two clients watching the same query are
// served by one materialized subscription; both see the same deltas.
func TestWatchSharedSubscription(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Apply(mod.New(1, 0, geom.Of(0, 0), geom.Of(10, 0))); err != nil {
		t.Fatal(err)
	}
	eng := shard.Single(db)
	ts := httptest.NewServer(New(eng, nil))
	defer ts.Close()

	req := watchRequest{K: 1, Hi: 1000, Point: []float64{0, 0}}
	r1, close1 := openWatch(t, ts.URL, "/watch/knn", req)
	defer close1()
	r2, close2 := openWatch(t, ts.URL, "/watch/knn", req)
	defer close2()
	_ = r1.next(1)
	_ = r2.next(1)

	if subs, streams := eng.Subscriptions().Counts(); subs != 1 || streams != 2 {
		t.Fatalf("counts = (%d subs, %d streams), want (1, 2)", subs, streams)
	}

	if err := db.Apply(mod.New(2, 5, geom.Of(0, 0), geom.Of(1, 1))); err != nil {
		t.Fatal(err)
	}
	for i, r := range []*sseReader{r1, r2} {
		recs := r.next(1)
		if len(recs) != 1 || len(recs[0].ev.Order) != 1 || recs[0].ev.Order[0] != "o2" {
			t.Fatalf("client %d: delta %+v", i+1, recs)
		}
	}
}
