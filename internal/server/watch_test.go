package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/shard"
)

// readEvents consumes SSE events from the stream until done or count.
func readEvents(t *testing.T, body *bufio.Reader, max int) []watchEvent {
	t.Helper()
	var out []watchEvent
	deadline := time.Now().Add(5 * time.Second)
	for len(out) < max && time.Now().Before(deadline) {
		line, err := body.ReadString('\n')
		if err != nil {
			break
		}
		line = strings.TrimSpace(line)
		if !strings.HasPrefix(line, "data: ") {
			continue
		}
		var ev watchEvent
		if err := json.Unmarshal([]byte(strings.TrimPrefix(line, "data: ")), &ev); err != nil {
			t.Fatalf("bad event %q: %v", line, err)
		}
		out = append(out, ev)
		if ev.Done {
			break
		}
	}
	return out
}

func TestWatchKNNStreamsAnswerChanges(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Apply(mod.New(1, 0, geom.Of(0, 0), geom.Of(10, 0))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(shard.Single(db), nil))
	defer ts.Close()

	// Open the watch.
	reqBody, _ := json.Marshal(watchRequest{K: 1, Hi: 1000, Point: []float64{0, 0}})
	req, _ := http.NewRequest("POST", ts.URL+"/watch/knn", bytes.NewReader(reqBody))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 {
		t.Fatalf("watch code %d", resp.StatusCode)
	}
	reader := bufio.NewReader(resp.Body)

	// Initial answer event.
	evs := readEvents(t, reader, 1)
	if len(evs) != 1 || len(evs[0].Nearest) != 1 || evs[0].Nearest[0] != "o1" {
		t.Fatalf("initial event %+v", evs)
	}

	// A closer object appears: the watch must push a new answer.
	if err := db.Apply(mod.New(2, 5, geom.Of(0, 0), geom.Of(1, 1))); err != nil {
		t.Fatal(err)
	}
	evs = readEvents(t, reader, 1)
	if len(evs) != 1 || len(evs[0].Nearest) != 1 || evs[0].Nearest[0] != "o2" {
		t.Fatalf("after new: %+v", evs)
	}

	// It terminates: answer reverts.
	if err := db.Apply(mod.Terminate(2, 8)); err != nil {
		t.Fatal(err)
	}
	evs = readEvents(t, reader, 1)
	if len(evs) != 1 || len(evs[0].Nearest) != 1 || evs[0].Nearest[0] != "o1" {
		t.Fatalf("after terminate: %+v", evs)
	}
}

func TestWatchKNNClosesAtHorizon(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Apply(mod.New(1, 0, geom.Of(0, 0), geom.Of(10, 0))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(shard.Single(db), nil))
	defer ts.Close()
	reqBody, _ := json.Marshal(watchRequest{K: 1, Hi: 50, Point: []float64{0, 0}})
	req, _ := http.NewRequest("POST", ts.URL+"/watch/knn", bytes.NewReader(reqBody))
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	reader := bufio.NewReader(resp.Body)
	_ = readEvents(t, reader, 1) // initial
	// An update beyond the horizon finishes the stream.
	if err := db.Apply(mod.ChDir(1, 60, geom.Of(1, 0))); err != nil {
		t.Fatal(err)
	}
	evs := readEvents(t, reader, 5)
	if len(evs) == 0 || !evs[len(evs)-1].Done {
		t.Fatalf("expected done event, got %+v", evs)
	}
}

func TestWatchKNNValidation(t *testing.T) {
	db := mod.NewDB(2, -1)
	if err := db.Apply(mod.New(1, 0, geom.Of(0, 0), geom.Of(10, 0))); err != nil {
		t.Fatal(err)
	}
	ts := httptest.NewServer(New(shard.Single(db), nil))
	defer ts.Close()
	for _, body := range []watchRequest{
		{K: 0, Hi: 100, Point: []float64{0, 0}}, // bad k
		{K: 1, Hi: 100, Point: []float64{0}},    // bad dim
		{K: 1, Hi: -10, Point: []float64{0, 0}}, // horizon before now
	} {
		data, _ := json.Marshal(body)
		resp, err := http.Post(ts.URL+"/watch/knn", "application/json", bytes.NewReader(data))
		if err != nil {
			t.Fatal(err)
		}
		_ = resp.Body.Close()
		if resp.StatusCode != 400 {
			t.Errorf("watch %+v code %d, want 400", body, resp.StatusCode)
		}
	}
}

// TestWatchTerminalEventSurvivesFullBuffer: the done record must reach
// the client even when the event buffer is full at finish time — a
// non-blocking send there silently dropped it, and the stream closed
// without the client ever learning the watch completed.
func TestWatchTerminalEventSurvivesFullBuffer(t *testing.T) {
	w := &watcher{hi: 10, ch: make(chan watchEvent, 1)}
	w.emit(watchEvent{T: 1, Nearest: []string{"o1"}}) // fills the buffer
	w.apply(mod.Update{Tau: 50})                      // beyond the horizon: must finish

	var got []watchEvent
	w.stream(context.Background(), func(ev watchEvent) bool {
		got = append(got, ev)
		return true
	})
	if len(got) != 2 {
		t.Fatalf("events = %+v, want buffered answer then done", got)
	}
	if got[0].Nearest == nil || got[0].Done {
		t.Errorf("first event should be the buffered answer: %+v", got[0])
	}
	last := got[len(got)-1]
	if !last.Done || last.T != 10 {
		t.Errorf("terminal event = %+v, want done at horizon 10", last)
	}
}

// TestWatchStreamStopsOnContextCancel: a gone client ends the pump and
// marks the watcher dead so the update fan-out stops feeding it.
func TestWatchStreamStopsOnContextCancel(t *testing.T) {
	w := &watcher{hi: 10, ch: make(chan watchEvent, 1)}
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	w.stream(ctx, func(watchEvent) bool { t.Error("enc called after cancel"); return true })
	w.mu.Lock()
	dead := w.dead
	w.mu.Unlock()
	if !dead {
		t.Error("watcher not marked dead after context cancel")
	}
}

// TestWatchErrorFinishIsTerminal: a session error finishes the stream
// with an error event that also survives a full buffer.
func TestWatchErrorFinishIsTerminal(t *testing.T) {
	w := &watcher{hi: 100, ch: make(chan watchEvent, 1)}
	w.emit(watchEvent{T: 1})
	w.mu.Lock()
	w.finish(watchEvent{T: 3, Error: "boom", Done: true})
	w.mu.Unlock()
	var got []watchEvent
	w.stream(context.Background(), func(ev watchEvent) bool {
		got = append(got, ev)
		return true
	})
	last := got[len(got)-1]
	if !last.Done || last.Error != "boom" {
		t.Errorf("terminal event = %+v, want done with error", last)
	}
}
