package shard

// Uncertainty queries across shards. Alibi touches exactly two objects,
// so it is not a sweep fan-out at all: the coordinator fetches each
// object's track from its owning shard's epoch snapshot and runs the
// closed-form decision once. PossiblyWithin is embarrassingly parallel
// in the usual way — each object's possibility intervals depend only on
// its own track, so the per-shard answers merge by disjoint union like
// Within. Both report the snapshot set's tau, keeping the server's
// window-classification discipline intact under concurrent updates.

import (
	"time"

	"repro/internal/bead"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
)

// Alibi decides whether objects o1 and o2 could have met during
// [lo, hi] (see query.Alibi). defaultVmax applies to objects without a
// declared speed bound; pass a negative value to require declarations.
// The returned tau is the snapshot set's last-update time.
func (e *Engine) Alibi(o1, o2 mod.OID, lo, hi, defaultVmax float64) (bead.Result, float64, error) {
	start := time.Now()
	snaps := e.snapshots()
	tau := maxTau(snaps)
	if o1 == o2 {
		// Same validation the single-source path applies, kept here
		// because the two-snapshot fetch below would happily race an
		// object against itself.
		_, err := query.Alibi(snaps[e.ShardOf(o1)], o1, o2, lo, hi, defaultVmax)
		return bead.Result{}, tau, err
	}
	t1, err := query.TrackOf(snaps[e.ShardOf(o1)], o1, defaultVmax)
	if err != nil {
		return bead.Result{}, tau, err
	}
	t2, err := query.TrackOf(snaps[e.ShardOf(o2)], o2, defaultVmax)
	if err != nil {
		return bead.Result{}, tau, err
	}
	res, err := bead.Alibi(t1, t2, lo, hi)
	if err != nil {
		return bead.Result{}, tau, err
	}
	e.recordQuery("alibi", len(e.shards), time.Since(start))
	return res, tau, nil
}

// PossiblyWithin fans the uncertainty range query out across the
// shards and merges the disjoint per-shard answers. The returned tau is
// the snapshot set's last-update time.
func (e *Engine) PossiblyWithin(q geom.Vec, dist, lo, hi, defaultVmax float64) (*query.AnswerSet, float64, error) {
	start := time.Now()
	snaps := e.snapshots()
	tau := maxTau(snaps)
	parts := make([]*query.AnswerSet, len(snaps))
	err := e.forEach(func(i int) error {
		ans, perr := query.PossiblyWithin(snaps[i], q, dist, lo, hi, defaultVmax)
		if perr != nil {
			return perr
		}
		parts[i] = ans
		return nil
	})
	if err != nil {
		return nil, tau, err
	}
	ans := query.MergeDisjoint(parts...)
	e.recordQuery("possibly-within", len(e.shards), time.Since(start))
	return ans, tau, nil
}
