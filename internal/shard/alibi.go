package shard

// Uncertainty queries across shards. Alibi touches exactly two objects,
// so it is not a sweep fan-out at all: the coordinator fetches each
// object's track from its owning shard's epoch snapshot and runs the
// closed-form decision once. PossiblyWithin is embarrassingly parallel
// in the usual way — each object's possibility intervals depend only on
// its own track, so the per-shard answers merge by disjoint union like
// Within. Both report the snapshot set's tau, keeping the server's
// window-classification discipline intact under concurrent updates.
//
// With the broad phase enabled (the default; see bead.go), both queries
// go through the per-shard BeadIndex: Alibi reuses cached tracks
// instead of rebuilding sample chains per query, and PossiblyWithin
// collects candidates from the space-time box R-tree instead of running
// the kernel against every chain. The index path is bit-identical to
// the scan — the broad phase only skips work it can prove fruitless.

import (
	"math"
	"slices"
	"time"

	"repro/internal/bead"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
)

// Alibi decides whether objects o1 and o2 could have met during
// [lo, hi] (see query.Alibi). defaultVmax applies to objects without a
// declared speed bound; pass a negative value to require declarations.
// The returned tau is the snapshot set's last-update time.
func (e *Engine) Alibi(o1, o2 mod.OID, lo, hi, defaultVmax float64) (bead.Result, float64, error) {
	start := time.Now()
	snaps := e.snapshots()
	tau := maxTau(snaps)
	if o1 == o2 {
		// Same validation the single-source path applies, kept here
		// because the two-snapshot fetch below would happily race an
		// object against itself.
		_, err := query.Alibi(snaps[e.ShardOf(o1)], o1, o2, lo, hi, defaultVmax)
		return bead.Result{}, tau, err
	}
	trackOf := func(o mod.OID) (*bead.Track, error) {
		return query.TrackOf(snaps[e.ShardOf(o)], o, defaultVmax)
	}
	if e.beadEnabled() {
		ixs := e.beadIndexes()
		trackOf = func(o mod.OID) (*bead.Track, error) {
			i := e.ShardOf(o)
			return ixs[i].TrackOf(snaps[i], o, defaultVmax)
		}
	}
	t1, err := trackOf(o1)
	if err != nil {
		return bead.Result{}, tau, err
	}
	t2, err := trackOf(o2)
	if err != nil {
		return bead.Result{}, tau, err
	}
	res, err := bead.Alibi(t1, t2, lo, hi)
	if err != nil {
		return bead.Result{}, tau, err
	}
	dur := time.Since(start)
	e.recordQuery("alibi", len(e.shards), dur)
	e.recordBeadAlibi(res, dur)
	return res, tau, nil
}

// validateSpeedBounds is the coordinator's pre-pass for uncertainty
// queries that require declared bounds: it collects the undeclared
// objects of EVERY shard into one ascending NoSpeedBoundError, so the
// error names the same complete object set regardless of the partition
// count or which shard's fan-out task would have failed first.
func (e *Engine) validateSpeedBounds(snaps []*mod.Snap, defaultVmax float64) error {
	if defaultVmax >= 0 && !math.IsNaN(defaultVmax) {
		return nil
	}
	var missing []mod.OID
	for _, s := range snaps {
		for _, o := range s.Objects() {
			if _, ok := s.SpeedBound(o); !ok {
				missing = append(missing, o)
			}
		}
	}
	if len(missing) == 0 {
		return nil
	}
	slices.Sort(missing)
	return &query.NoSpeedBoundError{Objects: missing}
}

// PossiblyWithin fans the uncertainty range query out across the
// shards and merges the disjoint per-shard answers. The returned tau is
// the snapshot set's last-update time.
func (e *Engine) PossiblyWithin(q geom.Vec, dist, lo, hi, defaultVmax float64) (*query.AnswerSet, float64, error) {
	start := time.Now()
	snaps := e.snapshots()
	tau := maxTau(snaps)
	if err := e.validateSpeedBounds(snaps, defaultVmax); err != nil {
		return nil, tau, err
	}
	useIx := e.beadEnabled()
	var ixs []*query.BeadIndex
	if useIx {
		ixs = e.beadIndexes()
	}
	parts := make([]*query.AnswerSet, len(snaps))
	stats := make([]query.BeadStats, len(snaps))
	err := e.forEach(func(i int) error {
		if useIx {
			ans, st, perr := ixs[i].PossiblyWithin(snaps[i], q, dist, lo, hi, defaultVmax)
			if perr != nil {
				return perr
			}
			parts[i], stats[i] = ans, st
			return nil
		}
		ans, perr := query.PossiblyWithin(snaps[i], q, dist, lo, hi, defaultVmax)
		if perr != nil {
			return perr
		}
		parts[i] = ans
		return nil
	})
	if err != nil {
		return nil, tau, err
	}
	ans := query.MergeDisjoint(parts...)
	dur := time.Since(start)
	e.recordQuery("possibly-within", len(e.shards), dur)
	if useIx {
		var total query.BeadStats
		for _, st := range stats {
			total.Population += st.Population
			total.Candidates += st.Candidates
			total.Windows += st.Windows
			total.Pruned += st.Pruned
			total.Kernel += st.Kernel
		}
		e.recordBeadPW(total, dur)
	}
	return ans, tau, nil
}
