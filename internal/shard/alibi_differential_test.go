package shard

// Differential harness for the alibi machinery: seeded random update
// streams (including speed-bound declarations) are served through the
// sharded engine at P=1 and P=4, and every exact closed-form answer is
// cross-checked against the deliberately-dumb certified oracle
// (bead.Oracle): dense time discretization plus interval branch-and-
// bound over space, sharing nothing with the kernel beyond the ball
// constraint layout. The oracle is three-valued — it only ever asserts
// what it can certify (a concrete witness point, or infeasibility by a
// margin 1000x wider than the kernel's tolerance) and says Unresolved
// otherwise, so a disagreement is never a knife-edge rounding artifact.
// Scenarios with an unresolved oracle verdict are skipped and counted;
// everything else must agree exactly — across both shard counts AND
// with the bead broad phase forced on and off — for both the alibi
// decision and per-object possibly-within membership.
// A divergence is shrunk by truncating the update tail and printed with
// its seed for replay.
//
// MOD_ALIBI_SCENARIOS overrides the scenario count (CI runs 1000; each
// scenario asks several alibi pairs and one possibly-within query at
// P=1 and P=4).

import (
	"fmt"
	"math"
	"math/rand"
	"os"
	"strconv"
	"testing"

	"repro/internal/bead"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
)

// alibiScenario is one random workload + query set, fully determined by
// its seed.
type alibiScenario struct {
	seed  int64
	us    []mod.Update
	pairs [][2]mod.OID
	point geom.Vec
	rad   float64
	vmax  float64 // default bound for objects without a declaration
	lo    float64
	hi    float64
}

// makeAlibiScenario derives a scenario from a seed: 4-10 objects with
// slowish recorded motion, direction changes, some terminations, and
// speed-bound declarations for roughly two thirds of them — some
// generous (fat beads), some below the recorded speed (exercising the
// v_eff degeneracy). Coordinates stay small so bead intersections are
// genuinely contested rather than trivially impossible.
func makeAlibiScenario(seed int64) alibiScenario {
	rng := rand.New(rand.NewSource(seed))
	n := 4 + rng.Intn(7)
	m := 8 + rng.Intn(25)
	vec := func(s float64) geom.Vec {
		return geom.Of(s*(rng.Float64()-0.5), s*(rng.Float64()-0.5))
	}
	var us []mod.Update
	tau := 0.5
	dead := make(map[mod.OID]bool)
	for i := 0; i < n; i++ {
		us = append(us, mod.New(mod.OID(i+1), tau, vec(10), vec(2)))
		tau += 0.1 + 0.4*rng.Float64()
	}
	for i := 0; i < m; i++ {
		o := mod.OID(rng.Intn(n) + 1)
		if dead[o] {
			continue
		}
		switch {
		case rng.Float64() < 0.25:
			// Bounds from 0.2 (often below the recorded speed — the
			// degenerate exact-segment regime) up to 3 (fat beads).
			us = append(us, mod.Bound(o, tau, 0.2+2.8*rng.Float64()))
		case rng.Float64() < 0.12 && len(dead) < n-2:
			dead[o] = true
			us = append(us, mod.Terminate(o, tau))
		default:
			us = append(us, mod.ChDir(o, tau, vec(2)))
		}
		tau += 0.1 + 0.4*rng.Float64()
	}
	var pairs [][2]mod.OID
	for len(pairs) < 3 {
		a := mod.OID(rng.Intn(n) + 1)
		b := mod.OID(rng.Intn(n) + 1)
		if a != b {
			pairs = append(pairs, [2]mod.OID{a, b})
		}
	}
	lo := tau * rng.Float64() * 0.5
	return alibiScenario{
		seed:  seed,
		us:    us,
		pairs: pairs,
		point: vec(12),
		rad:   0.5 + 3*rng.Float64(),
		vmax:  0.3 + 2*rng.Float64(),
		lo:    lo,
		hi:    lo + 1 + tau*rng.Float64(),
	}
}

// oracleAlibi computes the oracle verdict for one pair straight from
// the unsharded database — independent of the engine under test.
func oracleAlibi(o *bead.Oracle, db *mod.DB, a, b mod.OID, sc alibiScenario) (bead.Verdict, error) {
	ta, err := query.TrackOf(db, a, sc.vmax)
	if err != nil {
		return 0, err
	}
	tb, err := query.TrackOf(db, b, sc.vmax)
	if err != nil {
		return 0, err
	}
	return o.Alibi(ta, tb, sc.lo, sc.hi), nil
}

// runAlibiScenario evaluates one scenario at the given shard counts.
// It returns a divergence description ("" when everything agrees), the
// number of oracle-unresolved checks skipped, or a hard error.
func runAlibiScenario(sc alibiScenario, ps []int) (string, int, error) {
	db := mod.NewDB(2, -1)
	if err := db.ApplyAll(sc.us...); err != nil {
		return "", 0, fmt.Errorf("apply: %w", err)
	}
	orc := bead.NewOracle()
	skipped := 0

	// Exact answers per (shard count, broad-phase mode) combination,
	// compared pairwise afterwards. Running each engine with the bead
	// broad phase forced on AND off makes the scan path a true in-process
	// control for the index path, on top of whatever MOD_BEAD_BROADPHASE
	// selects for the rest of the suite.
	type pAnswers struct {
		label string
		alibi []bead.Result
		pw    *query.AnswerSet
	}
	answers := make([]pAnswers, 0, 2*len(ps))
	for _, p := range ps {
		for _, broad := range []bool{true, false} {
			eng, err := FromDB(db.Snapshot(), Config{Shards: p, Workers: p})
			if err != nil {
				return "", skipped, err
			}
			eng.SetBeadBroadPhase(broad)
			pa := pAnswers{label: fmt.Sprintf("P=%d/broad=%v", p, broad)}
			for _, pr := range sc.pairs {
				res, _, aerr := eng.Alibi(pr[0], pr[1], sc.lo, sc.hi, sc.vmax)
				if aerr != nil {
					return "", skipped, fmt.Errorf("alibi %s %v: %w", pa.label, pr, aerr)
				}
				pa.alibi = append(pa.alibi, res)
			}
			pw, _, err := eng.PossiblyWithin(sc.point, sc.rad, sc.lo, sc.hi, sc.vmax)
			if err != nil {
				return "", skipped, fmt.Errorf("possibly-within %s: %w", pa.label, err)
			}
			pa.pw = pw
			answers = append(answers, pa)
		}
	}

	// Cross-run agreement must be exact: same decision, same earliest
	// instant, same membership. The runs share the kernel but not
	// partitioning, snapshots, goroutine interleaving, or the broad
	// phase's candidate collection.
	for i := 1; i < len(answers); i++ {
		for j, pr := range sc.pairs {
			a0, ai := answers[0].alibi[j], answers[i].alibi[j]
			if a0.Possible != ai.Possible ||
				(a0.Possible && math.Float64bits(a0.At) != math.Float64bits(ai.At)) {
				return fmt.Sprintf("alibi %v: %s says %+v, %s says %+v",
					pr, answers[0].label, a0, answers[i].label, ai), skipped, nil
			}
		}
		o0 := answers[0].pw.Objects()
		oi := answers[i].pw.Objects()
		if fmt.Sprint(o0) != fmt.Sprint(oi) {
			return fmt.Sprintf("possibly-within members: %s says %v, %s says %v",
				answers[0].label, o0, answers[i].label, oi), skipped, nil
		}
		for _, o := range o0 {
			if fmt.Sprint(answers[0].pw.Intervals(o)) != fmt.Sprint(answers[i].pw.Intervals(o)) {
				return fmt.Sprintf("possibly-within o%d intervals: %s says %v, %s says %v",
					o, answers[0].label, answers[0].pw.Intervals(o), answers[i].label, answers[i].pw.Intervals(o)), skipped, nil
			}
		}
	}

	// Exact vs oracle.
	for j, pr := range sc.pairs {
		want, err := oracleAlibi(orc, db, pr[0], pr[1], sc)
		if err != nil {
			return "", skipped, fmt.Errorf("oracle alibi %v: %w", pr, err)
		}
		got := answers[0].alibi[j]
		switch want {
		case bead.Unresolved:
			skipped++
		case bead.Possible:
			if !got.Possible {
				return fmt.Sprintf("alibi %v: oracle found a witness, exact says impossible (window [%g,%g])",
					pr, sc.lo, sc.hi), skipped, nil
			}
		case bead.Impossible:
			if got.Possible {
				return fmt.Sprintf("alibi %v: oracle certifies impossible, exact claims meeting at t=%g (window [%g,%g])",
					pr, got.At, sc.lo, sc.hi), skipped, nil
			}
		}
	}
	for _, o := range db.Objects() {
		tr, err := query.TrackOf(db, o, sc.vmax)
		if err != nil {
			return "", skipped, fmt.Errorf("oracle track o%d: %w", o, err)
		}
		want := orc.PossiblyWithin(tr, sc.point, sc.rad, sc.lo, sc.hi)
		got := len(answers[0].pw.Intervals(o)) > 0
		switch want {
		case bead.Unresolved:
			skipped++
		case bead.Possible:
			if !got {
				return fmt.Sprintf("possibly-within o%d: oracle found a witness, exact excludes it (q=%v r=%g window [%g,%g])",
					o, sc.point, sc.rad, sc.lo, sc.hi), skipped, nil
			}
		case bead.Impossible:
			if got {
				return fmt.Sprintf("possibly-within o%d: oracle certifies out of range, exact includes %v (q=%v r=%g window [%g,%g])",
					o, answers[0].pw.Intervals(o), sc.point, sc.rad, sc.lo, sc.hi), skipped, nil
			}
		}
	}
	return "", skipped, nil
}

func TestDifferentialAlibiVsOracle(t *testing.T) {
	scenarios := 60
	if s := os.Getenv("MOD_ALIBI_SCENARIOS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("MOD_ALIBI_SCENARIOS=%q: %v", s, err)
		}
		scenarios = n
	}
	ps := []int{1, 4}
	const baseSeed = 173000
	failures, skipped, checks := 0, 0, 0
	for i := 0; i < scenarios; i++ {
		seed := baseSeed + int64(i)
		sc := makeAlibiScenario(seed)
		d, sk, err := runAlibiScenario(sc, ps)
		skipped += sk
		checks += len(sc.pairs) + 1
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d == "" {
			continue
		}
		// Shrink: drop updates off the tail while the divergence
		// persists, so the printed repro is minimal.
		min, minD := sc, d
		for len(min.us) > 1 {
			cand := min
			cand.us = min.us[:len(min.us)-1]
			cd, _, cerr := runAlibiScenario(cand, ps)
			if cerr != nil || cd == "" {
				break
			}
			min, minD = cand, cd
		}
		t.Errorf("seed %d diverges: %s\nshrunk to %d updates (of %d): replay with makeAlibiScenario(%d), us[:%d]",
			seed, minD, len(min.us), len(sc.us), seed, len(min.us))
		if failures++; failures >= 3 {
			t.Fatal("stopping after 3 divergent seeds")
		}
	}
	if failures == 0 {
		t.Logf("%d scenarios x P in {1,4} x broad phase on/off: zero divergences (%d oracle-unresolved checks skipped of ~%d)",
			scenarios, skipped, checks)
	}
}
