package shard

// Uncertainty broad-phase wiring: each shard owns one query.BeadIndex
// (track cache + space-time box R-tree over its own objects), created
// lazily on the first uncertainty query so engines that never ask one
// pay nothing. The indexes are registered as update listeners at
// creation and synchronize themselves against each query's snapshot, so
// no engine mutation path needs to know they exist.
//
// The toggle exists for differential testing: the scan path is the
// straightforward per-chain evaluation the broad phase must agree with
// bit-for-bit, so CI runs the alibi/possibly-within harnesses under
// both settings. MOD_BEAD_BROADPHASE=0/off/false/no disables the index
// at process level; SetBeadBroadPhase overrides per engine.

import (
	"os"
	"strings"

	"repro/internal/query"
)

// beadMode values cached in Engine.beadMode.
const (
	beadModeUnset = iota
	beadModeOn
	beadModeOff
)

// SetBeadBroadPhase forces the uncertainty broad phase on or off for
// this engine, overriding the MOD_BEAD_BROADPHASE environment toggle.
// Safe to call at any time; queries pick the mode up atomically.
func (e *Engine) SetBeadBroadPhase(on bool) {
	if on {
		e.beadMode.Store(beadModeOn)
	} else {
		e.beadMode.Store(beadModeOff)
	}
}

// beadEnabled reports whether uncertainty queries should run through
// the broad phase. Defaults to on; the environment variable
// MOD_BEAD_BROADPHASE set to 0/off/false/no selects the scan path. The
// first read caches the decision.
func (e *Engine) beadEnabled() bool {
	switch e.beadMode.Load() {
	case beadModeOn:
		return true
	case beadModeOff:
		return false
	}
	on := true
	switch strings.ToLower(os.Getenv("MOD_BEAD_BROADPHASE")) {
	case "0", "off", "false", "no":
		on = false
	}
	if on {
		e.beadMode.Store(beadModeOn)
	} else {
		e.beadMode.Store(beadModeOff)
	}
	return on
}

// beadIndexes returns the per-shard broad-phase indexes, creating and
// registering them on first use.
func (e *Engine) beadIndexes() []*query.BeadIndex {
	e.beadMu.Lock()
	defer e.beadMu.Unlock()
	if e.beadIx == nil {
		ixs := make([]*query.BeadIndex, len(e.shards))
		for i, db := range e.shards {
			ixs[i] = query.NewBeadIndex(db)
		}
		e.beadIx = ixs
	}
	return e.beadIx
}
