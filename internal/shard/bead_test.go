package shard

// Broad-phase wiring tests: the env/flag toggle, the coordinator's
// speed-bound pre-validation (one error naming every undeclared object,
// independent of the partition count), and the bead_* metric families
// an instrumented engine must emit for both uncertainty query kinds.

import (
	"bytes"
	"errors"
	"fmt"
	"strings"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/workload"
)

// TestBeadEnvToggle: MOD_BEAD_BROADPHASE selects the default path per
// engine (cached on first read), and SetBeadBroadPhase overrides it.
func TestBeadEnvToggle(t *testing.T) {
	cases := []struct {
		env  string
		want bool
	}{
		{"", true}, {"1", true}, {"on", true}, {"yes", true},
		{"0", false}, {"off", false}, {"FALSE", false}, {"No", false},
	}
	db, err := workload.RandomMovers(workload.Config{Seed: 3, N: 8})
	if err != nil {
		t.Fatal(err)
	}
	for _, c := range cases {
		t.Setenv("MOD_BEAD_BROADPHASE", c.env)
		eng, err := FromDB(db, Config{Shards: 2})
		if err != nil {
			t.Fatal(err)
		}
		if got := eng.beadEnabled(); got != c.want {
			t.Errorf("MOD_BEAD_BROADPHASE=%q: beadEnabled() = %v, want %v", c.env, got, c.want)
		}
		// The decision is cached — a later env change must not flip it.
		t.Setenv("MOD_BEAD_BROADPHASE", map[bool]string{true: "0", false: "1"}[c.want])
		if got := eng.beadEnabled(); got != c.want {
			t.Errorf("MOD_BEAD_BROADPHASE=%q: cached decision flipped to %v", c.env, got)
		}
		eng.SetBeadBroadPhase(!c.want)
		if got := eng.beadEnabled(); got == c.want {
			t.Errorf("MOD_BEAD_BROADPHASE=%q: SetBeadBroadPhase did not override", c.env)
		}
	}
}

// TestValidateSpeedBoundsAcrossShards: with declarations required, the
// pre-pass must name EVERY undeclared object in ascending order no
// matter how the population is partitioned, and a usable default or a
// full set of declarations must clear it.
func TestValidateSpeedBoundsAcrossShards(t *testing.T) {
	db, err := workload.RandomMovers(workload.Config{Seed: 9, N: 12})
	if err != nil {
		t.Fatal(err)
	}
	// Declare bounds for the even OIDs only.
	tau := db.Tau()
	for _, o := range db.Objects() {
		if o%2 == 0 {
			tau++
			if err := db.Apply(mod.Bound(o, tau, 3)); err != nil {
				t.Fatal(err)
			}
		}
	}
	var want []mod.OID
	for _, o := range db.Objects() {
		if o%2 == 1 {
			want = append(want, o)
		}
	}
	for _, p := range []int{1, 4} {
		eng, err := FromDB(db.Snapshot(), Config{Shards: p, Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		_, _, err = eng.PossiblyWithin(geom.Of(0, 0), 5, 0, tau, -1)
		var nsb *query.NoSpeedBoundError
		if !errors.As(err, &nsb) {
			t.Fatalf("P=%d: error %v, want NoSpeedBoundError", p, err)
		}
		if fmt.Sprint(nsb.Objects) != fmt.Sprint(want) {
			t.Errorf("P=%d: named objects %v, want %v", p, nsb.Objects, want)
		}
		if !errors.Is(err, query.ErrNoSpeedBound) {
			t.Errorf("P=%d: error does not unwrap to ErrNoSpeedBound", p)
		}
		// A usable default clears the pre-pass entirely.
		if _, _, err := eng.PossiblyWithin(geom.Of(0, 0), 5, 0, tau, 2); err != nil {
			t.Errorf("P=%d: with default vmax: %v", p, err)
		}
	}
}

// TestBeadMetricsRecorded: an instrumented engine answering both
// uncertainty query kinds through the broad phase must emit every
// bead_* family — including an object-stage prune count for a query
// ball far from the whole population.
func TestBeadMetricsRecorded(t *testing.T) {
	db, err := workload.RandomMovers(workload.Config{Seed: 7, N: 40})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := FromDB(db, Config{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng.SetBeadBroadPhase(true)
	reg := obs.NewRegistry()
	eng.Instrument(reg)

	// Far outside the population's extent with a small radius: the
	// broad phase must discard everyone at the object stage.
	if _, _, err := eng.PossiblyWithin(geom.Of(5000, 5000), 1, 0, 50, 2); err != nil {
		t.Fatal(err)
	}
	objs := eng.Objects()
	if _, _, err := eng.Alibi(objs[0], objs[1], 0, 50, 2); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		`bead_queries_total{kind="possibly-within"} 1`,
		`bead_queries_total{kind="alibi"} 1`,
		"bead_broadphase_candidates_count 1",
		`bead_broadphase_pruned_total{stage="objects"}`,
		"bead_kernel_invocations_total",
		`bead_query_seconds_count{kind="possibly-within"} 1`,
		`bead_query_seconds_count{kind="alibi"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
	// The scan path must not touch the bead instruments.
	eng2, err := FromDB(db, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	eng2.SetBeadBroadPhase(false)
	reg2 := obs.NewRegistry()
	eng2.Instrument(reg2)
	if _, _, err := eng2.PossiblyWithin(geom.Of(0, 0), 5, 0, 50, 2); err != nil {
		t.Fatal(err)
	}
	buf.Reset()
	if err := reg2.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	if strings.Contains(buf.String(), `bead_queries_total{`) {
		t.Error("scan path recorded broad-phase series")
	}
}
