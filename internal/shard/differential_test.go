package shard

// Property-based differential testing: seeded random update streams and
// past within/k-NN queries, evaluated by the sweep engine (unsharded
// and fan-out) AND by the naive constraint-database oracle
// (internal/baseline → internal/cql quantifier elimination), then
// compared at probe instants — the midpoints between all answer-change
// times either side reports. The two evaluation strategies share no
// code beyond the trajectory algebra, so agreement over thousands of
// random scenarios is strong evidence both implement Section 4's
// semantics; a disagreement is shrunk (by truncating the update tail)
// to a minimal failing stream and printed with its seed for replay.
//
// MOD_DIFF_SCENARIOS overrides the scenario count (CI runs 1000; each
// scenario is checked at P=1 and P=4, so CI covers 2000 engine-vs-
// oracle sweeps per query kind).

import (
	"fmt"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"

	"repro/internal/baseline"
	"repro/internal/cql"
	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/trajectory"
)

const (
	diffLo = 0.0
	diffHi = 35.0
)

// diffScenario is one random workload + query, fully determined by its
// seed.
type diffScenario struct {
	seed  int64
	us    []mod.Update
	gamma trajectory.Trajectory
	k     int
	c     float64
}

// makeDiffScenario derives a scenario from a seed: 6-20 objects created
// over time, 10-50 follow-up direction changes and terminations, a
// random linear query trajectory, a random k and threshold.
func makeDiffScenario(seed int64) diffScenario {
	rng := rand.New(rand.NewSource(seed))
	n := 6 + rng.Intn(15)
	m := 10 + rng.Intn(41)
	vec := func(s float64) geom.Vec {
		return geom.Of(s*(rng.Float64()-0.5), s*(rng.Float64()-0.5))
	}
	var us []mod.Update
	tau := 0.5
	dead := make(map[mod.OID]bool)
	for i := 0; i < n; i++ {
		us = append(us, mod.New(mod.OID(i+1), tau, vec(6), vec(120)))
		tau += 0.1 + 0.5*rng.Float64()
	}
	for i := 0; i < m; i++ {
		o := mod.OID(rng.Intn(n) + 1)
		if dead[o] {
			continue
		}
		if rng.Float64() < 0.1 && len(dead) < n-2 {
			dead[o] = true
			us = append(us, mod.Terminate(o, tau))
		} else {
			us = append(us, mod.ChDir(o, tau, vec(6)))
		}
		tau += 0.1 + 0.5*rng.Float64()
	}
	r := 10 + 50*rng.Float64()
	return diffScenario{
		seed:  seed,
		us:    us,
		gamma: trajectory.Linear(0, vec(4), vec(60)),
		k:     1 + rng.Intn(4),
		c:     r * r,
	}
}

// naiveMembers returns the oracle's snapshot answer at time t.
func naiveMembers(naive cql.NNResult, t float64) []mod.OID {
	var out []mod.OID
	for o, ss := range naive {
		if ss.Contains(t) {
			out = append(out, o)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// diffProbes builds the probe instants: midpoints between consecutive
// answer-change times reported by either side, skipping gaps too narrow
// to probe safely (the two evaluators compute crossing roots with
// different roundoff, so instants within ~1e-5 of a boundary are
// ambiguous by construction, not divergent).
func diffProbes(ans *query.AnswerSet, naive cql.NNResult) []float64 {
	pts := []float64{diffLo, diffHi}
	for _, o := range ans.Objects() {
		for _, iv := range ans.Intervals(o) {
			pts = append(pts, iv.Lo, iv.Hi)
		}
	}
	for _, ss := range naive {
		for _, sp := range ss.Spans() {
			pts = append(pts, sp.Lo, sp.Hi)
		}
	}
	sort.Float64s(pts)
	var probes []float64
	for i := 0; i+1 < len(pts); i++ {
		if pts[i] >= diffLo && pts[i+1] <= diffHi && pts[i+1]-pts[i] > 1e-5 {
			probes = append(probes, 0.5*(pts[i]+pts[i+1]))
		}
	}
	return probes
}

// diffDivergence probes a sweep answer against the oracle and describes
// the first disagreement ("" if none).
func diffDivergence(kind string, p int, ans *query.AnswerSet, naive cql.NNResult) string {
	for _, t := range diffProbes(ans, naive) {
		got := ans.At(t)
		want := naiveMembers(naive, t)
		if len(got) != len(want) {
			return fmt.Sprintf("%s P=%d at t=%g: sweep=%v oracle=%v", kind, p, t, got, want)
		}
		for i := range got {
			if got[i] != want[i] {
				return fmt.Sprintf("%s P=%d at t=%g: sweep=%v oracle=%v", kind, p, t, got, want)
			}
		}
	}
	return ""
}

// runDiffScenario evaluates one scenario through both strategies at the
// given partition counts. It returns a divergence description ("" when
// the strategies agree) or a hard evaluation error.
func runDiffScenario(sc diffScenario, ps []int) (string, error) {
	db := mod.NewDB(2, -1)
	if err := db.ApplyAll(sc.us...); err != nil {
		return "", fmt.Errorf("apply: %w", err)
	}
	naiveKNN, err := baseline.AllPairsKNN(db, sc.gamma, sc.k, diffLo, diffHi)
	if err != nil {
		return "", fmt.Errorf("oracle knn: %w", err)
	}
	naiveWithin, err := baseline.AllPairsWithin(db, sc.gamma, sc.c, diffLo, diffHi)
	if err != nil {
		return "", fmt.Errorf("oracle within: %w", err)
	}
	f := gdist.EuclideanSq{Query: sc.gamma}
	for _, p := range ps {
		eng, err := FromDB(db.Snapshot(), Config{Shards: p, Workers: p})
		if err != nil {
			return "", err
		}
		gotKNN, _, _, err := eng.KNN(f, sc.k, diffLo, diffHi)
		if err != nil {
			return "", fmt.Errorf("sweep knn P=%d: %w", p, err)
		}
		if d := diffDivergence("knn", p, gotKNN, naiveKNN); d != "" {
			return d, nil
		}
		gotW, _, _, err := eng.Within(f, sc.c, diffLo, diffHi)
		if err != nil {
			return "", fmt.Errorf("sweep within P=%d: %w", p, err)
		}
		if d := diffDivergence("within", p, gotW, naiveWithin); d != "" {
			return d, nil
		}
	}
	return "", nil
}

func TestDifferentialSweepVsOracle(t *testing.T) {
	scenarios := 60
	if s := os.Getenv("MOD_DIFF_SCENARIOS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("MOD_DIFF_SCENARIOS=%q: %v", s, err)
		}
		scenarios = n
	}
	ps := []int{1, 4}
	const baseSeed = 94000
	failures := 0
	for i := 0; i < scenarios; i++ {
		seed := baseSeed + int64(i)
		sc := makeDiffScenario(seed)
		d, err := runDiffScenario(sc, ps)
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if d == "" {
			continue
		}
		// Shrink: drop updates off the tail while the divergence
		// persists, so the printed repro is minimal.
		min, minD := sc, d
		for len(min.us) > 1 {
			cand := min
			cand.us = min.us[:len(min.us)-1]
			cd, cerr := runDiffScenario(cand, ps)
			if cerr != nil || cd == "" {
				break
			}
			min, minD = cand, cd
		}
		t.Errorf("seed %d diverges: %s\nshrunk to %d updates (of %d): replay with makeDiffScenario(%d), us[:%d]\nquery: k=%d c=%g window=[%g,%g]",
			seed, minD, len(min.us), len(sc.us), seed, len(min.us), sc.k, sc.c, diffLo, diffHi)
		if failures++; failures >= 3 {
			t.Fatal("stopping after 3 divergent seeds")
		}
	}
	if failures == 0 {
		t.Logf("%d scenarios x P in {1,4} x {knn, within}: zero divergences", scenarios)
	}
}
