package shard

// Sharded-vs-unsharded equivalence: on seeded workloads (bulk-loaded
// populations plus concurrently-replayed update streams), the answers
// of the fan-out KNN and Within coordinators must be byte-identical to
// a single sweep over the whole database. Run under -race in CI, these
// tests double as the concurrency check on the fan-out path.

import (
	"testing"

	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

func evalDist(q trajectory.Trajectory) gdist.GDistance { return gdist.EuclideanSq{Query: q} }

// buildWorkload returns two identical databases (bulk population plus a
// chronological update stream applied to both) and the stream itself:
// one stays unsharded, the other is handed to the engine under test.
func buildWorkload(t *testing.T, seed int64, n, updates int) (*mod.DB, *mod.DB, []mod.Update) {
	t.Helper()
	mk := func() *mod.DB {
		db, err := workload.ConvergingMovers(workload.Config{Seed: seed, N: n})
		if err != nil {
			t.Fatal(err)
		}
		return db
	}
	base := mk()
	us, err := workload.Stream(base, workload.StreamConfig{
		Seed: seed + 1, Count: updates, From: 1, To: 15,
	})
	if err != nil {
		t.Fatal(err)
	}
	single := mk()
	if err := single.ApplyAll(us...); err != nil {
		t.Fatal(err)
	}
	return mk(), single, us
}

func TestKNNShardedEquivalence(t *testing.T) {
	forShard, single, us := buildWorkload(t, 21, 150, 200)
	q := workload.QueryTrajectory(workload.Config{}, 5)
	f := evalDist(q)
	for _, p := range []int{1, 2, 3, 4, 8} {
		eng, err := FromDB(forShard.Snapshot(), Config{Shards: p, Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		// Replay the stream concurrently, one goroutine per shard.
		if err := workload.ReplayConcurrent(us, p, eng.ShardOf, eng.Apply); err != nil {
			t.Fatalf("P=%d: concurrent replay: %v", p, err)
		}
		if got, want := eng.Tau(), single.Tau(); got != want {
			t.Fatalf("P=%d: Tau = %g, want %g", p, got, want)
		}
		if got, want := eng.Len(), single.Len(); got != want {
			t.Fatalf("P=%d: Len = %d, want %d", p, got, want)
		}
		for _, k := range []int{1, 3, 8} {
			want := query.NewKNN(k)
			if _, err := query.RunPast(single, f, 0, 25, want); err != nil {
				t.Fatal(err)
			}
			got, _, tau, err := eng.KNN(f, k, 0, 25)
			if err != nil {
				t.Fatalf("P=%d k=%d: %v", p, k, err)
			}
			if tau != single.Tau() {
				t.Fatalf("P=%d k=%d: snapshot tau = %g, want %g", p, k, tau, single.Tau())
			}
			if g, w := got.String(), want.Answer().String(); g != w {
				t.Fatalf("P=%d k=%d: sharded answer differs\n got: %s\nwant: %s", p, k, g, w)
			}
		}
	}
}

func TestWithinShardedEquivalence(t *testing.T) {
	forShard, single, us := buildWorkload(t, 33, 120, 150)
	q := workload.QueryTrajectory(workload.Config{}, 6)
	f := evalDist(q)
	for _, p := range []int{2, 4, 7} {
		eng, err := FromDB(forShard.Snapshot(), Config{Shards: p, Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.ReplayConcurrent(us, p, eng.ShardOf, eng.Apply); err != nil {
			t.Fatalf("P=%d: concurrent replay: %v", p, err)
		}
		for _, r := range []float64{100, 400, 900} {
			c := r * r
			want := query.NewWithin(c)
			if _, err := query.RunPast(single, f, 0, 25, want); err != nil {
				t.Fatal(err)
			}
			got, _, _, err := eng.Within(f, c, 0, 25)
			if err != nil {
				t.Fatalf("P=%d r=%g: %v", p, r, err)
			}
			if g, w := got.String(), want.Answer().String(); g != w {
				t.Fatalf("P=%d r=%g: sharded answer differs\n got: %s\nwant: %s", p, r, g, w)
			}
		}
	}
}

// TestKNNEquivalencePointQuery mirrors the server's /query/knn shape
// (fixed query point) on the bulk-loaded population alone.
func TestKNNEquivalencePointQuery(t *testing.T) {
	db, err := workload.RandomMovers(workload.Config{Seed: 9, N: 100})
	if err != nil {
		t.Fatal(err)
	}
	f := gdist.PointSq{Point: []float64{25, -40}}
	want := query.NewKNN(5)
	if _, err := query.RunPast(db, f, 0, 40, want); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{2, 4} {
		eng, err := FromDB(db.Snapshot(), Config{Shards: p, Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		got, _, _, err := eng.KNN(f, 5, 0, 40)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := got.String(), want.Answer().String(); g != w {
			t.Fatalf("P=%d: sharded answer differs\n got: %s\nwant: %s", p, g, w)
		}
	}
}
