package shard

// Fan-out query execution: every shard sweeps its own objects with the
// ordinary single-threaded engine of internal/query, at most Workers
// sweeps in flight at a time, and a coordinator merges the per-shard
// results.
//
// Correctness of the merges:
//
//   - RunPast / Within: membership of an object in a threshold answer
//     f(y,t) <= C depends only on that object's own curve (and the
//     constant curve, which every shard materializes for itself), so
//     the per-shard answer restricted to a shard's objects IS the
//     global answer restricted to them. The merged answer is their
//     disjoint union.
//
//   - KNN: the global k nearest at any instant t is a subset of the
//     union of the per-shard k nearest at t. (If o has at most k-1
//     objects strictly closer than it globally at t, then at most k-1
//     of them are in o's own shard, so o is among its shard's top k at
//     t.) Each shard therefore reports, as candidates, every object
//     that ever enters its local top-k answer over the window — a
//     superset of every object that ever enters (or ties) the global
//     top-k — and the coordinator runs one final sweep over the merged
//     candidate pool. Restricting that sweep to candidates cannot
//     change the answer: all boundary events of the global top-k
//     involve candidate curves only.
//
// Every query also reports the tau of the snapshot set it ran over
// (the max of the per-shard snapshot taus): under concurrent updates
// the engine's live Tau() keeps moving, and classifying the query
// window (past/future/continuing) against anything but the snapshot
// tau misstates what the answer was computed over — the wire-level
// race this return value fixes (see server.handleKNN).

import (
	"errors"
	"math"
	"sync"
	"time"

	"repro/internal/core"
	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/query"
)

// forEach runs fn(i) for every shard index on the bounded worker pool
// and joins the per-shard errors.
func (e *Engine) forEach(fn func(i int) error) error {
	if e.workers <= 1 || len(e.shards) == 1 {
		for i := range e.shards {
			if err := fn(i); err != nil {
				return err
			}
		}
		return nil
	}
	sem := make(chan struct{}, e.workers)
	errs := make([]error, len(e.shards))
	var wg sync.WaitGroup
	for i := range e.shards {
		sem <- struct{}{} // acquire before spawning: at most Workers in flight
		wg.Add(1)
		go func(i int) {
			defer wg.Done()
			defer func() { <-sem }()
			errs[i] = fn(i)
		}(i)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// RunPast fans a past query over the window [lo, hi] out across the
// shards: mk(i) builds the evaluator for shard i (a fresh one per
// shard), each shard sweeps a snapshot of its own objects, and the
// per-shard evaluators are returned for the caller to merge, together
// with the summed sweep work and the tau of the snapshot set. This is
// the generic building block; KNN and Within are the merged
// front-ends.
func (e *Engine) RunPast(f gdist.GDistance, lo, hi float64, mk func(i int) query.Evaluator) ([]query.Evaluator, core.Stats, float64, error) {
	snaps := e.snapshots()
	tau := maxTau(snaps)
	evs := make([]query.Evaluator, len(snaps))
	stats := make([]core.Stats, len(snaps))
	err := e.forEach(func(i int) error {
		ev := mk(i)
		start := time.Now()
		st, rerr := query.RunPast(snaps[i], f, lo, hi, ev)
		e.recordSweep(i, st, time.Since(start))
		if rerr != nil {
			return rerr
		}
		evs[i] = ev
		stats[i] = st
		return nil
	})
	var total core.Stats
	for _, st := range stats {
		total.Add(st)
	}
	if err != nil {
		return nil, total, tau, err
	}
	return evs, total, tau, nil
}

// Within evaluates the threshold query f(y,t) <= c over [lo, hi]: each
// shard maintains its own answer (with its own materialized constant
// curve) and the coordinator takes the disjoint union. The returned
// tau is the snapshot set's last-update time — the "now" the answer
// was computed as of.
func (e *Engine) Within(f gdist.GDistance, c float64, lo, hi float64) (*query.AnswerSet, core.Stats, float64, error) {
	start := time.Now()
	evs, st, tau, err := e.RunPast(f, lo, hi, func(int) query.Evaluator { return query.NewWithin(c) })
	if err != nil {
		return nil, st, tau, err
	}
	parts := make([]*query.AnswerSet, len(evs))
	for i, ev := range evs {
		parts[i] = ev.(*query.Within).Answer()
	}
	ans := query.MergeDisjoint(parts...)
	e.recordQuery("within", len(e.shards), time.Since(start))
	return ans, st, tau, nil
}

// KNN evaluates the k-nearest-neighbors query over [lo, hi]: each shard
// sweeps its own objects and reports its local top-k candidate set (the
// objects of its local k-NN answer), then the coordinator runs the
// final sweep over the merged candidate pool — at most P*k curves in
// the order at any instant, typically far fewer than N. See the package
// comment for why the candidate pool is sufficient. The returned tau is
// the snapshot set's last-update time.
func (e *Engine) KNN(f gdist.GDistance, k int, lo, hi float64) (*query.AnswerSet, core.Stats, float64, error) {
	start := time.Now()
	snaps := e.snapshots()
	tau := maxTau(snaps)
	if len(snaps) == 1 {
		// Unsharded: the local answer is the global answer.
		knn := query.NewKNN(k)
		st, err := query.RunPast(snaps[0], f, lo, hi, knn)
		e.recordSweep(0, st, time.Since(start))
		if err != nil {
			return nil, st, tau, err
		}
		e.recordQuery("knn", 1, time.Since(start))
		return knn.Answer(), st, tau, nil
	}
	cands := make([][]mod.OID, len(snaps))
	stats := make([]core.Stats, len(snaps))
	err := e.forEach(func(i int) error {
		knn := query.NewKNN(k)
		sweepStart := time.Now()
		st, rerr := query.RunPast(snaps[i], f, lo, hi, knn)
		e.recordSweep(i, st, time.Since(sweepStart))
		if rerr != nil {
			return rerr
		}
		cands[i] = knn.Answer().Objects()
		stats[i] = st
		return nil
	})
	var total core.Stats
	for _, st := range stats {
		total.Add(st)
	}
	if err != nil {
		return nil, total, tau, err
	}
	// Coordinator: one sweep over the union of the candidate pools.
	pool := mod.NewDB(e.dim, math.Inf(-1))
	nCands := 0
	for i, os := range cands {
		for _, o := range os {
			tr, terr := snaps[i].Traj(o)
			if terr != nil {
				return nil, total, tau, terr
			}
			if lerr := pool.Load(o, tr); lerr != nil {
				return nil, total, tau, lerr
			}
			nCands++
		}
	}
	e.recordCandidates(nCands)
	final := query.NewKNN(k)
	finalStart := time.Now()
	st, err := query.RunPast(pool, f, lo, hi, final)
	e.recordSweep(-1, st, time.Since(finalStart))
	total.Add(st)
	if err != nil {
		return nil, total, tau, err
	}
	e.recordQuery("knn", len(e.shards), time.Since(start))
	return final.Answer(), total, tau, nil
}
