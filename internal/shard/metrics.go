package shard

// Observability wiring: an Engine optionally records its work into an
// obs.Registry. Everything here is nil-safe — an uninstrumented engine
// (tests, embedded use) pays one atomic pointer load per record point.
//
// The measured series follow the paper's cost model: a past sweep is
// O((m+N) log N) (Theorem 4), so the support-change count m — events
// and swaps — is the headline counter, reschedules approximate the
// constant factor, and the max queue length watches Lemma 9's <= N
// bound. Per-shard labels expose partition skew; the histograms
// (per-shard sweep latency, whole-query latency, k-NN candidate-pool
// size) localize where a slow query spent its time.

import (
	"strconv"
	"time"

	"repro/internal/bead"
	"repro/internal/core"
	"repro/internal/obs"
	"repro/internal/query"
)

// metrics is the engine's instrument set.
type metrics struct {
	updates      *obs.CounterVec   // applied updates, by shard
	updateErrors *obs.Counter      // rejected updates (chronology, dim, ...)
	events       *obs.CounterVec   // sweep intersection events, by shard
	swaps        *obs.CounterVec   // order exchanges, by shard
	reschedules  *obs.CounterVec   // pair-event computations, by shard
	maxQueue     *obs.GaugeVec     // high-water event-queue length, by shard
	sweepSecs    *obs.HistogramVec // one shard's sweep duration, by shard
	querySecs    *obs.HistogramVec // whole fan-out query duration, by kind
	fanout       *obs.Histogram    // shards swept per query
	candidates   *obs.Histogram    // merged k-NN candidate-pool size
	batchSize    *obs.Histogram    // updates per ApplyBatch call

	// Uncertainty (bead) query series: how much work the broad phase
	// did and, more importantly, avoided (see internal/query.BeadIndex).
	beadQueries    *obs.CounterVec   // uncertainty queries, by kind
	beadCandidates *obs.Histogram    // broad-phase candidates per possibly-within
	beadPruned     *obs.CounterVec   // work rejected before the kernel, by stage
	beadKernel     *obs.Counter      // closed-form kernel invocations
	beadSecs       *obs.HistogramVec // uncertainty query duration, by kind
}

// coordLabel tags the coordinator's final k-NN sweep in per-shard
// series (it sweeps the merged candidate pool, not a partition).
const coordLabel = "coord"

// Instrument registers the engine's metrics in reg and starts
// recording. Call once, before serving traffic; the instruments are
// lock-free, so recording never contends with queries or updates.
func (e *Engine) Instrument(reg *obs.Registry) {
	m := &metrics{
		updates: reg.NewCounterVec("mod_updates_total",
			"updates applied, by owning shard", "shard"),
		updateErrors: reg.NewCounter("mod_update_errors_total",
			"updates rejected (chronology, dimension, unknown object)"),
		events: reg.NewCounterVec("mod_sweep_events_total",
			"intersection events processed by query sweeps (Theorem 4's m)", "shard"),
		swaps: reg.NewCounterVec("mod_sweep_swaps_total",
			"order exchanges among g-distance curves", "shard"),
		reschedules: reg.NewCounterVec("mod_sweep_reschedules_total",
			"adjacency event computations", "shard"),
		maxQueue: reg.NewGaugeVec("mod_sweep_max_queue_len",
			"high-water event-queue length (Lemma 9 bounds it by N)", "shard"),
		sweepSecs: reg.NewHistogramVec("mod_shard_sweep_seconds",
			"one shard's sweep duration within a fan-out query",
			obs.DefLatencyBuckets, "shard"),
		querySecs: reg.NewHistogramVec("mod_query_seconds",
			"whole query duration including fan-out and merge",
			obs.DefLatencyBuckets, "kind"),
		fanout: reg.NewHistogram("mod_query_fanout_width",
			"shards swept per query", obs.DefSizeBuckets),
		candidates: reg.NewHistogram("mod_knn_candidates",
			"merged candidate-pool size of sharded k-NN queries", obs.DefSizeBuckets),
		batchSize: reg.NewHistogram("mod_update_batch_size",
			"updates per ApplyBatch call", obs.DefSizeBuckets),
		beadQueries: reg.NewCounterVec("bead_queries_total",
			"uncertainty queries answered, by kind", "kind"),
		beadCandidates: reg.NewHistogram("bead_broadphase_candidates",
			"objects the broad phase passed to the kernel path per possibly-within query",
			obs.DefSizeBuckets),
		beadPruned: reg.NewCounterVec("bead_broadphase_pruned_total",
			"work rejected before the exact kernel: whole objects by box/cap miss, bead windows by the bounding-ball distance test",
			"stage"),
		beadKernel: reg.NewCounter("bead_kernel_invocations_total",
			"closed-form feasibility kernel invocations by uncertainty queries"),
		beadSecs: reg.NewHistogramVec("bead_query_seconds",
			"uncertainty query duration including broad phase and kernel, by kind",
			obs.DefLatencyBuckets, "kind"),
	}
	e.metrics.Store(m)

	// The subscription registry instruments into the same obs registry.
	// It is created lazily (Subscriptions), so remember reg for a later
	// creation and instrument an already-live registry now.
	e.subMu.Lock()
	e.subObs = reg
	r := e.subReg
	e.subMu.Unlock()
	if r != nil {
		r.Instrument(reg)
	}
}

// shardLabel renders a shard index for the per-shard series.
func shardLabel(i int) string {
	if i < 0 {
		return coordLabel
	}
	return strconv.Itoa(i)
}

// recordUpdate counts one routed update.
func (e *Engine) recordUpdate(shard int, err error) {
	m := e.metrics.Load()
	if m == nil {
		return
	}
	if err != nil {
		m.updateErrors.Inc()
		return
	}
	m.updates.With(shardLabel(shard)).Inc()
}

// recordUpdates counts a batch of n routed updates applied by one
// shard, plus the rejection that stopped the group, if any.
func (e *Engine) recordUpdates(shard, n int, err error) {
	m := e.metrics.Load()
	if m == nil {
		return
	}
	if n > 0 {
		m.updates.With(shardLabel(shard)).Add(uint64(n))
	}
	if err != nil {
		m.updateErrors.Inc()
	}
}

// recordBatch observes one ApplyBatch call's size.
func (e *Engine) recordBatch(n int) {
	m := e.metrics.Load()
	if m == nil {
		return
	}
	m.batchSize.Observe(float64(n))
}

// recordSweep folds one sweep's work into the per-shard series; shard
// -1 is the k-NN coordinator's final sweep.
func (e *Engine) recordSweep(shard int, st core.Stats, dur time.Duration) {
	m := e.metrics.Load()
	if m == nil {
		return
	}
	l := shardLabel(shard)
	m.events.With(l).Add(uint64(st.Events))
	m.swaps.With(l).Add(uint64(st.Swaps))
	m.reschedules.With(l).Add(uint64(st.Reschedules))
	m.maxQueue.With(l).SetMax(float64(st.MaxQueueLen))
	m.sweepSecs.With(l).Observe(dur.Seconds())
}

// recordQuery observes one whole fan-out query.
func (e *Engine) recordQuery(kind string, width int, dur time.Duration) {
	m := e.metrics.Load()
	if m == nil {
		return
	}
	m.querySecs.With(kind).Observe(dur.Seconds())
	m.fanout.Observe(float64(width))
}

// recordBeadPW folds one broad-phase possibly-within query's work
// statistics into the bead series.
func (e *Engine) recordBeadPW(st query.BeadStats, dur time.Duration) {
	m := e.metrics.Load()
	if m == nil {
		return
	}
	m.beadQueries.With("possibly-within").Inc()
	m.beadCandidates.Observe(float64(st.Candidates))
	if n := st.Population - st.Candidates; n > 0 {
		m.beadPruned.With("objects").Add(uint64(n))
	}
	if st.Pruned > 0 {
		m.beadPruned.With("windows").Add(uint64(st.Pruned))
	}
	m.beadKernel.Add(uint64(st.Kernel))
	m.beadSecs.With("possibly-within").Observe(dur.Seconds())
}

// recordBeadAlibi folds one alibi decision's work into the bead series.
// Result.Checked counts examined windows; of those, Pruned never
// reached the kernel.
func (e *Engine) recordBeadAlibi(res bead.Result, dur time.Duration) {
	m := e.metrics.Load()
	if m == nil {
		return
	}
	m.beadQueries.With("alibi").Inc()
	if res.Pruned > 0 {
		m.beadPruned.With("windows").Add(uint64(res.Pruned))
	}
	if k := res.Checked - res.Pruned; k > 0 {
		m.beadKernel.Add(uint64(k))
	}
	m.beadSecs.With("alibi").Observe(dur.Seconds())
}

// recordCandidates observes a sharded k-NN's merged pool size.
func (e *Engine) recordCandidates(n int) {
	m := e.metrics.Load()
	if m == nil {
		return
	}
	m.candidates.Observe(float64(n))
}
