package shard

import (
	"bytes"
	"strings"
	"testing"

	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/workload"
)

// TestInstrumentRecordsEngineWork: after updates and queries, the
// registry must carry per-shard update counts, sweep work and latency
// observations — and an uninstrumented engine must keep working.
func TestInstrumentRecordsEngineWork(t *testing.T) {
	db, err := workload.RandomMovers(workload.Config{Seed: 5, N: 60})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := FromDB(db, Config{Shards: 4, Workers: 2})
	if err != nil {
		t.Fatal(err)
	}
	reg := obs.NewRegistry()
	eng.Instrument(reg)

	tau := eng.Tau()
	if err := eng.Apply(mod.ChDir(eng.Objects()[0], tau+1, []float64{1, 0})); err != nil {
		t.Fatal(err)
	}
	// A rejected update counts as an error, not an update.
	if err := eng.Apply(mod.ChDir(eng.Objects()[0], tau, []float64{1, 0})); err == nil {
		t.Fatal("stale update should fail")
	}

	f := gdist.PointSq{Point: []float64{0, 0}}
	if _, _, _, err := eng.KNN(f, 3, 0, 20); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := eng.Within(f, 900, 0, 20); err != nil {
		t.Fatal(err)
	}

	var buf bytes.Buffer
	if err := reg.WriteProm(&buf); err != nil {
		t.Fatal(err)
	}
	body := buf.String()
	for _, want := range []string{
		"mod_updates_total{shard=",
		"mod_update_errors_total 1",
		"mod_sweep_events_total{shard=",
		"mod_sweep_max_queue_len{shard=",
		"mod_shard_sweep_seconds_bucket{shard=",
		`mod_query_seconds_count{kind="knn"} 1`,
		`mod_query_seconds_count{kind="within"} 1`,
		"mod_query_fanout_width_count 2",
		"mod_knn_candidates_count 1",
		// The coordinator's final k-NN sweep shows up under its own label.
		`mod_shard_sweep_seconds_count{shard="coord"} 1`,
	} {
		if !strings.Contains(body, want) {
			t.Errorf("metrics missing %q in:\n%s", want, body)
		}
	}
}

// TestUninstrumentedEngineRecordsNothing: record points are nil-safe.
func TestUninstrumentedEngineRecordsNothing(t *testing.T) {
	db, err := workload.RandomMovers(workload.Config{Seed: 5, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := FromDB(db, Config{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	if err := eng.Apply(mod.ChDir(eng.Objects()[0], eng.Tau()+1, []float64{1, 0})); err != nil {
		t.Fatal(err)
	}
	if _, _, _, err := eng.KNN(gdist.PointSq{Point: []float64{0, 0}}, 2, 0, 10); err != nil {
		t.Fatal(err)
	}
}
