package shard

// MVCC equivalence: fan-out queries now run against lock-free epoch
// snapshots (mod.EpochSnapshot) instead of holding every shard's read
// lock for the duration of the sweep. These tests pin the two things
// that must survive that change: at quiescence the answers are
// byte-identical to a sweep over the locked merged Snapshot, and under
// concurrent churn every answer is computed over ONE consistent epoch
// per shard (tau monotone, no errors, class/tau pairing intact).
// Run under -race in CI.

import (
	"sync"
	"testing"

	"repro/internal/query"
	"repro/internal/workload"
)

func TestMVCCEquivalentToLockedSnapshot(t *testing.T) {
	forShard, _, us := buildWorkload(t, 77, 120, 160)
	q := workload.QueryTrajectory(workload.Config{}, 3)
	f := evalDist(q)
	for _, p := range []int{1, 4} {
		eng, err := FromDB(forShard.Snapshot(), Config{Shards: p, Workers: p})
		if err != nil {
			t.Fatal(err)
		}
		if err := workload.ReplayConcurrent(us, p, eng.ShardOf, eng.Apply); err != nil {
			t.Fatal(err)
		}
		// Locked reference: one sweep over the merged copy Snapshot()
		// builds under the shard locks.
		ref := eng.Snapshot()
		for _, k := range []int{1, 4} {
			want := query.NewKNN(k)
			if _, err := query.RunPast(ref, f, 0, 20, want); err != nil {
				t.Fatal(err)
			}
			got, _, tau, err := eng.KNN(f, k, 0, 20)
			if err != nil {
				t.Fatal(err)
			}
			if tau != ref.Tau() {
				t.Fatalf("P=%d k=%d: snapshot tau %g, want %g", p, k, tau, ref.Tau())
			}
			if g, w := got.String(), want.Answer().String(); g != w {
				t.Fatalf("P=%d k=%d: epoch-snapshot answer differs from locked answer\n got: %s\nwant: %s", p, k, g, w)
			}
		}
		want := query.NewWithin(9)
		if _, err := query.RunPast(ref, f, 0, 20, want); err != nil {
			t.Fatal(err)
		}
		got, _, _, err := eng.Within(f, 9, 0, 20)
		if err != nil {
			t.Fatal(err)
		}
		if g, w := got.String(), want.Answer().String(); g != w {
			t.Fatalf("P=%d within: epoch-snapshot answer differs\n got: %s\nwant: %s", p, g, w)
		}
	}
}

// TestMVCCQueriesDuringChurn runs past queries continuously while the
// update stream replays: no query may error, observed taus must be
// monotone non-decreasing per reader, and once the stream quiesces the
// live answer must equal the locked reference. This is the lock-free
// read path doing its job: queries never block on (or tear under) the
// writer.
func TestMVCCQueriesDuringChurn(t *testing.T) {
	forShard, single, us := buildWorkload(t, 99, 100, 300)
	q := workload.QueryTrajectory(workload.Config{}, 2)
	f := evalDist(q)
	const p = 4
	eng, err := FromDB(forShard.Snapshot(), Config{Shards: p, Workers: p})
	if err != nil {
		t.Fatal(err)
	}

	stop := make(chan struct{})
	var wg sync.WaitGroup
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			last := eng.Tau()
			for {
				select {
				case <-stop:
					return
				default:
				}
				_, _, tau, err := eng.KNN(f, 2, 0, 20)
				if err != nil {
					t.Errorf("query during churn: %v", err)
					return
				}
				if tau < last {
					t.Errorf("tau went backwards during churn: %g after %g", tau, last)
					return
				}
				last = tau
			}
		}()
	}
	if err := workload.ReplayConcurrent(us, p, eng.ShardOf, eng.Apply); err != nil {
		t.Fatal(err)
	}
	close(stop)
	wg.Wait()

	want := query.NewKNN(2)
	if _, err := query.RunPast(single, f, 0, 20, want); err != nil {
		t.Fatal(err)
	}
	got, _, _, err := eng.KNN(f, 2, 0, 20)
	if err != nil {
		t.Fatal(err)
	}
	if g, w := got.String(), want.Answer().String(); g != w {
		t.Fatalf("post-churn answer differs from unsharded reference\n got: %s\nwant: %s", g, w)
	}
}
