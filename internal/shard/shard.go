// Package shard is the horizontally partitioned MOD engine: it
// hash-partitions the object set by OID across P independent shards,
// each owning its own mod.DB (and therefore its own lock and, during
// queries, its own kinetic sweep state). Updates route to the shard of
// their object; queries fan out across shards on a bounded worker pool
// and merge at a coordinator (see fanout.go).
//
// The partitioning invariant: every object lives in exactly one shard,
// chosen by a fixed hash of its OID, and every update to that object is
// applied by that shard alone. A chronological update stream therefore
// stays chronological within each shard (a subsequence of a
// chronological sequence is chronological), which is all mod.DB's
// update discipline requires. The aggregate last-update time Tau() is
// the maximum of the per-shard taus; after any globally chronological
// stream it equals the tau a single unsharded DB would report, because
// the shard that received the final update carries it.
//
// Why sharding helps even on one core: the plane sweep costs
// O((m+N) log N) where m counts order exchanges among the curves it
// sweeps (Theorem 4). A shard sweeps only its own objects, so
// cross-shard curve crossings are never scheduled or processed; with a
// hash partition a 1/P fraction of pairs are co-sharded in expectation,
// shrinking the event term from m to ~m/P in total across shards. On
// top of that, the per-shard sweeps are independent and run in parallel
// on the worker pool. Correctness of the merged answers is argued per
// query in fanout.go and DESIGN.md ("Sharded evaluation").
package shard

import (
	"errors"
	"fmt"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"

	"repro/internal/mod"
	"repro/internal/obs"
	"repro/internal/query"
	"repro/internal/sub"
	"repro/internal/trajectory"
)

// Config parametrizes an engine.
type Config struct {
	// Shards is the partition count P; 0 or 1 means unsharded.
	Shards int
	// Workers bounds the number of concurrently running per-shard query
	// sweeps; 0 means min(Shards, GOMAXPROCS).
	Workers int
	// Dim is the spatial dimension (New only; FromDB inherits the
	// source's).
	Dim int
	// Tau0 is the initial last-update time of every shard (New only).
	Tau0 float64
}

// Engine is a sharded moving object database. All methods are safe for
// concurrent use; updates to different shards proceed in parallel.
type Engine struct {
	shards  []*mod.DB
	workers int
	dim     int
	// metrics is the optional observability hook (see Instrument in
	// metrics.go); nil means uninstrumented.
	metrics atomic.Pointer[metrics]

	// subMu guards the lazily created materialized-subscription
	// registry and the obs registry it should instrument into.
	subMu  sync.Mutex
	subReg *sub.Registry
	subObs *obs.Registry

	// beadMu guards the lazily created per-shard uncertainty broad-phase
	// indexes; beadMode caches the broad-phase toggle (see bead.go).
	beadMu   sync.Mutex
	beadIx   []*query.BeadIndex
	beadMode atomic.Int32
}

func (c Config) normalized() Config {
	if c.Shards <= 0 {
		c.Shards = 1
	}
	if c.Workers <= 0 {
		c.Workers = c.Shards
		if mp := runtime.GOMAXPROCS(0); mp < c.Workers {
			c.Workers = mp
		}
	}
	return c
}

// New builds an empty sharded database for objects in R^cfg.Dim with
// per-shard last-update time cfg.Tau0.
func New(cfg Config) (*Engine, error) {
	cfg = cfg.normalized()
	if cfg.Dim <= 0 {
		return nil, errors.New("shard: dimension must be positive")
	}
	shards := make([]*mod.DB, cfg.Shards)
	for i := range shards {
		shards[i] = mod.NewDB(cfg.Dim, cfg.Tau0)
	}
	return &Engine{shards: shards, workers: cfg.Workers, dim: cfg.Dim}, nil
}

// FromDB partitions an existing database across cfg.Shards shards. With
// cfg.Shards <= 1 the engine adopts db directly (no copy), so an
// unsharded deployment pays nothing for going through the engine. With
// P > 1 the source is split by the OID hash and not modified further;
// the engine owns the parts.
func FromDB(db *mod.DB, cfg Config) (*Engine, error) {
	cfg = cfg.normalized()
	e := &Engine{workers: cfg.Workers, dim: db.Dim()}
	if cfg.Shards == 1 {
		e.shards = []*mod.DB{db}
		return e, nil
	}
	parts, err := db.Partition(cfg.Shards, func(o mod.OID) int {
		return int(hashOID(o) % uint64(cfg.Shards))
	})
	if err != nil {
		return nil, err
	}
	e.shards = parts
	return e, nil
}

// FromShards adopts pre-partitioned databases as the engine's shards —
// the recovery path: a durable store recovers each shard's database
// independently (snapshot + journal replay) and hands the set back to
// the engine without re-partitioning. The adoption is validated: the
// partitioning invariant (every object lives in the shard its OID
// hashes to) is what makes update routing and fan-out merges correct,
// so a mis-filed object is an error here, not a latent wrong answer.
func FromShards(dbs []*mod.DB, cfg Config) (*Engine, error) {
	if len(dbs) == 0 {
		return nil, errors.New("shard: FromShards needs at least one shard")
	}
	cfg.Shards = len(dbs)
	cfg = cfg.normalized()
	dim := dbs[0].Dim()
	for i, db := range dbs {
		if db.Dim() != dim {
			return nil, fmt.Errorf("shard: shard %d has dim %d, shard 0 has %d", i, db.Dim(), dim)
		}
		for _, o := range db.Objects() {
			if want := int(hashOID(o) % uint64(len(dbs))); want != i {
				return nil, fmt.Errorf("shard: object %s found in shard %d, owned by shard %d", o, i, want)
			}
		}
	}
	return &Engine{shards: dbs, workers: cfg.Workers, dim: dim}, nil
}

// Single adopts db as a one-shard engine: the unsharded backend, with
// no partitioning or fan-out overhead.
func Single(db *mod.DB) *Engine {
	e, err := FromDB(db, Config{Shards: 1})
	if err != nil {
		// FromDB with Shards == 1 adopts the DB and cannot fail.
		panic(err)
	}
	return e
}

// hashOID mixes an OID into a well-distributed 64-bit value (the
// splitmix64 finalizer), so dense sequential OIDs spread evenly across
// shards.
func hashOID(o mod.OID) uint64 {
	x := uint64(o)
	x ^= x >> 33
	x *= 0xff51afd7ed558ccd
	x ^= x >> 33
	x *= 0xc4ceb9fe1a85ec53
	x ^= x >> 33
	return x
}

// NumShards returns the partition count P.
func (e *Engine) NumShards() int { return len(e.shards) }

// ShardOf returns the index of the shard owning o.
func (e *Engine) ShardOf(o mod.OID) int {
	return int(hashOID(o) % uint64(len(e.shards)))
}

// Shard exposes one partition (tests, diagnostics).
func (e *Engine) Shard(i int) *mod.DB { return e.shards[i] }

// Dim returns the spatial dimension.
func (e *Engine) Dim() int { return e.dim }

// Apply routes one update to its object's shard. Chronology is enforced
// per shard: the update time must exceed the owning shard's tau.
func (e *Engine) Apply(u mod.Update) error {
	i := e.ShardOf(u.O)
	err := e.shards[i].Apply(u)
	e.recordUpdate(i, err)
	return err
}

// ApplyAll applies updates in order, stopping at the first error.
func (e *Engine) ApplyAll(us ...mod.Update) error {
	for i, u := range us {
		if err := e.Apply(u); err != nil {
			return fmt.Errorf("shard: update %d (%s): %w", i, u, err)
		}
	}
	return nil
}

// ApplyBatch ingests a batch of updates: one pass of the OID router
// groups them by owning shard (preserving batch order within each
// group, which preserves per-shard chronology), then the per-shard
// groups are applied in parallel on the worker pool, each under a
// single lock/listener session (mod.DB.ApplyBatch). It returns the
// total number of updates applied across shards and the join of any
// per-shard errors. Error semantics are per shard: a rejected update
// stops its own shard's group at that point but does not stop the other
// shards' groups — callers that need all-or-nothing ordering across
// shards should use ApplyAll.
func (e *Engine) ApplyBatch(us []mod.Update) (int, error) {
	if len(us) == 0 {
		return 0, nil
	}
	e.recordBatch(len(us))
	if len(e.shards) == 1 {
		n, err := e.shards[0].ApplyBatch(us)
		e.recordUpdates(0, n, err)
		return n, err
	}
	groups := make([][]mod.Update, len(e.shards))
	for _, u := range us {
		i := e.ShardOf(u.O)
		groups[i] = append(groups[i], u)
	}
	applied := make([]int, len(e.shards))
	err := e.forEach(func(i int) error {
		if len(groups[i]) == 0 {
			return nil
		}
		n, aerr := e.shards[i].ApplyBatch(groups[i])
		applied[i] = n
		e.recordUpdates(i, n, aerr)
		if aerr != nil {
			return fmt.Errorf("shard %d: %w", i, aerr)
		}
		return nil
	})
	total := 0
	for _, n := range applied {
		total += n
	}
	return total, err
}

// Load bulk-loads a pre-existing trajectory into its shard.
func (e *Engine) Load(o mod.OID, tr trajectory.Trajectory) error {
	return e.shards[e.ShardOf(o)].Load(o, tr)
}

// OnUpdate registers a listener on every shard; it observes all applied
// updates. When updates are applied concurrently from several
// goroutines, the listener is invoked concurrently too and must be safe
// for that (mod.Journal is; see its locking).
func (e *Engine) OnUpdate(l mod.Listener) {
	for _, db := range e.shards {
		db.OnUpdate(l)
	}
}

// Tau returns the aggregate last-update time: the maximum over shards.
func (e *Engine) Tau() float64 {
	t := e.shards[0].Tau()
	for _, db := range e.shards[1:] {
		if st := db.Tau(); st > t {
			t = st
		}
	}
	return t
}

// Len returns the total object count across shards.
func (e *Engine) Len() int {
	n := 0
	for _, db := range e.shards {
		n += db.Len()
	}
	return n
}

// Objects returns all OIDs across shards in ascending order.
func (e *Engine) Objects() []mod.OID {
	var out []mod.OID
	for _, db := range e.shards {
		out = append(out, db.Objects()...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// LiveAt returns the OIDs live at time t across shards, ascending.
func (e *Engine) LiveAt(t float64) []mod.OID {
	var out []mod.OID
	for _, db := range e.shards {
		out = append(out, db.LiveAt(t)...)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// Traj returns the trajectory of o from its shard.
func (e *Engine) Traj(o mod.OID) (trajectory.Trajectory, error) {
	return e.shards[e.ShardOf(o)].Traj(o)
}

// Contains reports whether o exists.
func (e *Engine) Contains(o mod.OID) bool {
	return e.shards[e.ShardOf(o)].Contains(o)
}

// Snapshot composes a single consistent unsharded copy of the whole
// database: union of the objects, max of the taus, logs merged
// chronologically. Per-shard snapshots are taken first (each under its
// own read lock), so a snapshot never blocks updates for long.
func (e *Engine) Snapshot() *mod.DB {
	snaps := make([]*mod.DB, len(e.shards))
	for i, db := range e.shards {
		snaps[i] = db.Snapshot()
	}
	merged, err := mod.Merge(snaps...)
	if err != nil {
		// Disjointness and equal dims are structural invariants of the
		// engine; a failure here is a bug, not a runtime condition.
		panic(fmt.Sprintf("shard: snapshot merge: %v", err))
	}
	return merged
}

// snapshots captures one consistent per-shard view for a fan-out
// query. These are MVCC epoch snapshots (mod.DB.EpochSnapshot): after
// the first query of an epoch the per-shard cost is two atomic loads —
// no shard lock, no map copy, no log copy — so query fan-out never
// contends with the sweeper/writer for the shard lock.
func (e *Engine) snapshots() []*mod.Snap {
	out := make([]*mod.Snap, len(e.shards))
	for i, db := range e.shards {
		out[i] = db.EpochSnapshot()
	}
	return out
}

// maxTau is the aggregate last-update time of a set of per-shard
// snapshots — the tau a query over those snapshots is answered as of.
func maxTau(snaps []*mod.Snap) float64 {
	t := snaps[0].Tau()
	for _, s := range snaps[1:] {
		if st := s.Tau(); st > t {
			t = st
		}
	}
	return t
}

// Subscriptions returns the engine's materialized-subscription registry
// (internal/sub), creating it on first use. The registry ingests the
// engine's update feed and maintains every continuing query
// incrementally, so the cost of an update is proportional to the
// subscriptions it can affect, not to the subscription count. One
// registry serves all shards: per-shard update streams are
// chronological, and the registry tolerates the bounded cross-shard
// interleaving a listener fan-in produces.
func (e *Engine) Subscriptions() *sub.Registry {
	e.subMu.Lock()
	defer e.subMu.Unlock()
	if e.subReg == nil {
		e.subReg = sub.NewRegistry(e, sub.Config{})
		if e.subObs != nil {
			e.subReg.Instrument(e.subObs)
		}
	}
	return e.subReg
}

// CloseSubscriptions shuts the subscription registry down, terminating
// every stream with sub.ErrClosed. Safe to call when no registry was
// ever created, and idempotent.
func (e *Engine) CloseSubscriptions() {
	e.subMu.Lock()
	r := e.subReg
	e.subMu.Unlock()
	if r != nil {
		r.Close()
	}
}
