package shard

import (
	"bytes"
	"errors"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/trajectory"
	"repro/internal/workload"
)

func seededEngine(t *testing.T, n, p, workers int) (*Engine, *mod.DB) {
	t.Helper()
	db, err := workload.ConvergingMovers(workload.Config{Seed: 11, N: n})
	if err != nil {
		t.Fatal(err)
	}
	eng, err := FromDB(db, Config{Shards: p, Workers: workers})
	if err != nil {
		t.Fatal(err)
	}
	return eng, db
}

func TestShardOfRouting(t *testing.T) {
	eng, _ := seededEngine(t, 50, 4, 1)
	counts := make([]int, 4)
	for o := mod.OID(1); o <= 50; o++ {
		i := eng.ShardOf(o)
		if i < 0 || i >= 4 {
			t.Fatalf("ShardOf(%s) = %d outside [0,4)", o, i)
		}
		if j := eng.ShardOf(o); j != i {
			t.Fatalf("ShardOf(%s) unstable: %d then %d", o, i, j)
		}
		counts[i]++
	}
	// The hash must spread dense sequential OIDs: no shard may be empty
	// or hold everything on this population.
	for i, c := range counts {
		if c == 0 || c == 50 {
			t.Fatalf("degenerate partition: shard %d holds %d of 50", i, c)
		}
	}
}

func TestPartitionDisjointAndComplete(t *testing.T) {
	eng, db := seededEngine(t, 40, 3, 1)
	if got, want := eng.Len(), db.Len(); got != want {
		t.Fatalf("Len = %d, want %d", got, want)
	}
	seen := map[mod.OID]int{}
	for i := 0; i < eng.NumShards(); i++ {
		for _, o := range eng.Shard(i).Objects() {
			if prev, dup := seen[o]; dup {
				t.Fatalf("%s in shards %d and %d", o, prev, i)
			}
			seen[o] = i
			if want := eng.ShardOf(o); want != i {
				t.Fatalf("%s stored in shard %d but routes to %d", o, i, want)
			}
		}
	}
	if len(seen) != db.Len() {
		t.Fatalf("partition covers %d objects, want %d", len(seen), db.Len())
	}
}

func TestApplyRoutesToOwningShard(t *testing.T) {
	eng, err := New(Config{Shards: 4, Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	const o = mod.OID(77)
	if err := eng.Apply(mod.New(o, 0, geom.Of(1, 0), geom.Of(0, 0))); err != nil {
		t.Fatal(err)
	}
	owner := eng.ShardOf(o)
	for i := 0; i < eng.NumShards(); i++ {
		if got, want := eng.Shard(i).Contains(o), i == owner; got != want {
			t.Fatalf("shard %d Contains(%s) = %v, want %v", i, o, got, want)
		}
	}
	if !eng.Contains(o) {
		t.Fatal("engine does not contain applied object")
	}
	// Chronology is enforced by the owning shard.
	err = eng.Apply(mod.ChDir(o, -5, geom.Of(0, 1)))
	if !errors.Is(err, mod.ErrChronology) {
		t.Fatalf("stale update error = %v, want ErrChronology", err)
	}
	// Unknown objects fail on their (empty) shard.
	err = eng.Apply(mod.ChDir(999, 1, geom.Of(0, 1)))
	if !errors.Is(err, mod.ErrNotFound) {
		t.Fatalf("unknown object error = %v, want ErrNotFound", err)
	}
}

func TestAggregatesComposePerShardState(t *testing.T) {
	eng, db := seededEngine(t, 30, 4, 1)
	if got, want := eng.Tau(), db.Tau(); got != want {
		t.Fatalf("Tau = %g, want %g", got, want)
	}
	if got, want := len(eng.Objects()), db.Len(); got != want {
		t.Fatalf("Objects count = %d, want %d", got, want)
	}
	for i, o := range eng.Objects() {
		if want := db.Objects()[i]; o != want {
			t.Fatalf("Objects[%d] = %s, want %s", i, o, want)
		}
	}
	gotLive, wantLive := eng.LiveAt(1), db.LiveAt(1)
	if len(gotLive) != len(wantLive) {
		t.Fatalf("LiveAt(1): %d objects, want %d", len(gotLive), len(wantLive))
	}
	// An update advances the aggregate tau past every shard's.
	if err := eng.Apply(mod.ChDir(eng.Objects()[0], eng.Tau()+5, geom.Of(1, 1))); err != nil {
		t.Fatal(err)
	}
	if got, want := eng.Tau(), db.Tau()+5; got != want {
		t.Fatalf("Tau after update = %g, want %g", got, want)
	}
}

// TestSnapshotMatchesUnsharded: partitioning then merging must
// reconstruct the exact unsharded state, byte-for-byte in the stable
// snapshot format (same objects, same tau, same chronological log).
func TestSnapshotMatchesUnsharded(t *testing.T) {
	db := mod.NewDB(2, -1)
	var us []mod.Update
	for i := 1; i <= 20; i++ {
		us = append(us, mod.New(mod.OID(i), float64(i), geom.Of(1, 0), geom.Of(float64(i), 0)))
	}
	us = append(us,
		mod.ChDir(3, 30, geom.Of(0, 1)),
		mod.Terminate(7, 31),
		mod.ChDir(12, 32, geom.Of(-1, 0)),
	)
	if err := db.ApplyAll(us...); err != nil {
		t.Fatal(err)
	}
	for _, p := range []int{1, 2, 5} {
		eng, err := FromDB(db.Snapshot(), Config{Shards: p})
		if err != nil {
			t.Fatal(err)
		}
		var want, got bytes.Buffer
		if err := db.SaveJSON(&want); err != nil {
			t.Fatal(err)
		}
		if err := eng.Snapshot().SaveJSON(&got); err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(want.Bytes(), got.Bytes()) {
			t.Fatalf("P=%d: merged snapshot differs from unsharded original", p)
		}
	}
}

func TestSingleAdoptsDB(t *testing.T) {
	db := mod.NewDB(2, -1)
	eng := Single(db)
	if eng.NumShards() != 1 {
		t.Fatalf("NumShards = %d, want 1", eng.NumShards())
	}
	if err := eng.Apply(mod.New(1, 0, geom.Of(1, 0), geom.Of(0, 0))); err != nil {
		t.Fatal(err)
	}
	// No copy: the update is visible through the adopted DB.
	if !db.Contains(1) {
		t.Fatal("update through engine not visible in adopted DB")
	}
}

func TestLoadRoutes(t *testing.T) {
	eng, err := New(Config{Shards: 3, Dim: 2, Tau0: -1})
	if err != nil {
		t.Fatal(err)
	}
	tr := trajectory.Linear(0, geom.Of(1, 1), geom.Of(0, 0))
	if err := eng.Load(5, tr); err != nil {
		t.Fatal(err)
	}
	if !eng.Shard(eng.ShardOf(5)).Contains(5) {
		t.Fatal("loaded object not in its shard")
	}
	got, err := eng.Traj(5)
	if err != nil {
		t.Fatal(err)
	}
	if got.String() != tr.String() {
		t.Fatalf("Traj = %s, want %s", got, tr)
	}
}

func TestRunPastFanOutCollectsEveryShard(t *testing.T) {
	for _, workers := range []int{1, 4} {
		eng, _ := seededEngine(t, 60, 4, workers)
		q := workload.QueryTrajectory(workload.Config{}, 2)
		evs, st, _, err := eng.RunPast(evalDist(q), 0, 20, func(int) query.Evaluator {
			return query.NewWithin(500 * 500)
		})
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		if len(evs) != 4 {
			t.Fatalf("workers=%d: %d evaluators, want 4", workers, len(evs))
		}
		total := 0
		for _, ev := range evs {
			total += len(ev.(*query.Within).Answer().Objects())
		}
		if total == 0 {
			t.Fatalf("workers=%d: empty fan-out answer", workers)
		}
		if st.Inserts == 0 {
			t.Fatalf("workers=%d: stats not aggregated", workers)
		}
	}
}

func TestFanOutSurfacesErrors(t *testing.T) {
	eng, _ := seededEngine(t, 20, 4, 4)
	q := workload.QueryTrajectory(workload.Config{}, 2)
	// Inverted window: every shard's sweep construction fails.
	if _, _, _, err := eng.KNN(evalDist(q), 1, 10, 5); err == nil {
		t.Fatal("inverted window KNN did not error")
	}
	if _, _, _, err := eng.Within(evalDist(q), 1, 10, 5); err == nil {
		t.Fatal("inverted window Within did not error")
	}
}

func TestConfigNormalization(t *testing.T) {
	if _, err := New(Config{Shards: 2}); err == nil {
		t.Fatal("New without Dim did not error")
	}
	eng, err := New(Config{Dim: 2})
	if err != nil {
		t.Fatal(err)
	}
	if eng.NumShards() != 1 {
		t.Fatalf("default NumShards = %d, want 1", eng.NumShards())
	}
}
