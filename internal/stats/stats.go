// Package stats provides the small fitting toolkit the experiment harness
// uses to check complexity *shapes*: given measured (N, time) points, it
// fits time against candidate growth models (N, N log N, N^2, ...) by
// least squares through the origin and reports which model explains the
// measurements best. The reproduction does not chase absolute constants —
// the substrate differs from the authors' — only the asymptotic shape
// (who wins, what the growth order is).
package stats

import (
	"errors"
	"fmt"
	"math"
	"sort"
)

// Model is a candidate growth law y ~ c * F(x).
type Model struct {
	Name string
	F    func(x float64) float64
}

// Standard models for the experiments.
var (
	ModelConst  = Model{Name: "1", F: func(x float64) float64 { return 1 }}
	ModelLogN   = Model{Name: "log N", F: func(x float64) float64 { return math.Log2(math.Max(x, 2)) }}
	ModelN      = Model{Name: "N", F: func(x float64) float64 { return x }}
	ModelNLogN  = Model{Name: "N log N", F: func(x float64) float64 { return x * math.Log2(math.Max(x, 2)) }}
	ModelN2     = Model{Name: "N^2", F: func(x float64) float64 { return x * x }}
	ModelN2LogN = Model{Name: "N^2 log N", F: func(x float64) float64 { return x * x * math.Log2(math.Max(x, 2)) }}
)

// Fit is the result of fitting one model.
type Fit struct {
	Model Model
	// C is the least-squares coefficient of y = C * F(x).
	C float64
	// RelErr is the mean relative residual |y - C F(x)| / y.
	RelErr float64
}

// String implements fmt.Stringer.
func (f Fit) String() string {
	return fmt.Sprintf("%s (c=%.3g, relerr=%.1f%%)", f.Model.Name, f.C, 100*f.RelErr)
}

// FitModel fits y = c*F(x) by least squares through the origin.
func FitModel(xs, ys []float64, m Model) (Fit, error) {
	if len(xs) != len(ys) || len(xs) == 0 {
		return Fit{}, errors.New("stats: need equal-length nonempty samples")
	}
	num, den := 0.0, 0.0
	for i := range xs {
		fx := m.F(xs[i])
		num += fx * ys[i]
		den += fx * fx
	}
	if den == 0 { //modlint:allow floatcmp -- exact zero-divisor guard: den is a sum of squares, zero only when every term is
		return Fit{}, errors.New("stats: degenerate model values")
	}
	c := num / den
	rel := 0.0
	n := 0
	for i := range xs {
		if ys[i] <= 0 {
			continue
		}
		rel += math.Abs(ys[i]-c*m.F(xs[i])) / ys[i]
		n++
	}
	if n > 0 {
		rel /= float64(n)
	}
	return Fit{Model: m, C: c, RelErr: rel}, nil
}

// BestFit fits all models and returns them sorted by relative error
// (best first).
func BestFit(xs, ys []float64, models ...Model) ([]Fit, error) {
	if len(models) == 0 {
		models = []Model{ModelConst, ModelLogN, ModelN, ModelNLogN, ModelN2}
	}
	fits := make([]Fit, 0, len(models))
	for _, m := range models {
		f, err := FitModel(xs, ys, m)
		if err != nil {
			return nil, err
		}
		fits = append(fits, f)
	}
	sort.Slice(fits, func(i, j int) bool { return fits[i].RelErr < fits[j].RelErr })
	return fits, nil
}

// GrowthExponent estimates p in y ~ x^p from the first and last sample
// (log-log slope), a quick sanity check that complements BestFit.
func GrowthExponent(xs, ys []float64) (float64, error) {
	if len(xs) < 2 {
		return 0, errors.New("stats: need at least two samples")
	}
	x0, x1 := xs[0], xs[len(xs)-1]
	y0, y1 := ys[0], ys[len(ys)-1]
	if x0 <= 0 || x1 <= 0 || y0 <= 0 || y1 <= 0 || x0 == x1 { //modlint:allow floatcmp -- exact guard against log(x1/x0)=0 division; sample sizes are small integers
		return 0, errors.New("stats: samples must be positive and distinct")
	}
	return math.Log(y1/y0) / math.Log(x1/x0), nil
}

// Mean returns the arithmetic mean.
func Mean(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	s := 0.0
	for _, x := range xs {
		s += x
	}
	return s / float64(len(xs))
}

// Median returns the median (average of middle pair for even length).
func Median(xs []float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	n := len(cp)
	if n%2 == 1 {
		return cp[n/2]
	}
	return 0.5 * (cp[n/2-1] + cp[n/2])
}

// Percentile returns the p-th percentile (0 <= p <= 100) by nearest rank.
func Percentile(xs []float64, p float64) float64 {
	if len(xs) == 0 {
		return 0
	}
	cp := append([]float64(nil), xs...)
	sort.Float64s(cp)
	rank := int(math.Ceil(p/100*float64(len(cp)))) - 1
	if rank < 0 {
		rank = 0
	}
	if rank >= len(cp) {
		rank = len(cp) - 1
	}
	return cp[rank]
}
