package stats

import (
	"math"
	"testing"
)

func TestFitModelRecoversCoefficient(t *testing.T) {
	xs := []float64{100, 200, 400, 800, 1600}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3.5 * x * math.Log2(x)
	}
	f, err := FitModel(xs, ys, ModelNLogN)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(f.C-3.5) > 1e-9 || f.RelErr > 1e-12 {
		t.Errorf("fit = %+v", f)
	}
	if f.String() == "" {
		t.Error("String")
	}
}

func TestBestFitPicksRightModel(t *testing.T) {
	xs := []float64{64, 128, 256, 512, 1024, 2048}
	cases := []struct {
		make func(x float64) float64
		want string
	}{
		{func(x float64) float64 { return 7 * x }, "N"},
		{func(x float64) float64 { return 0.2 * x * math.Log2(x) }, "N log N"},
		{func(x float64) float64 { return 0.01 * x * x }, "N^2"},
		{func(x float64) float64 { return 5 * math.Log2(x) }, "log N"},
	}
	for _, c := range cases {
		ys := make([]float64, len(xs))
		for i, x := range xs {
			ys[i] = c.make(x) * (1 + 0.02*math.Sin(x)) // 2% noise
		}
		fits, err := BestFit(xs, ys)
		if err != nil {
			t.Fatal(err)
		}
		if fits[0].Model.Name != c.want {
			t.Errorf("best fit = %s, want %s (all: %v)", fits[0].Model.Name, c.want, fits)
		}
	}
}

func TestFitErrors(t *testing.T) {
	if _, err := FitModel(nil, nil, ModelN); err == nil {
		t.Error("empty samples accepted")
	}
	if _, err := FitModel([]float64{1}, []float64{1, 2}, ModelN); err == nil {
		t.Error("mismatched samples accepted")
	}
	if _, err := FitModel([]float64{0, 0}, []float64{1, 1}, Model{Name: "zero", F: func(float64) float64 { return 0 }}); err == nil {
		t.Error("degenerate model accepted")
	}
}

func TestGrowthExponent(t *testing.T) {
	xs := []float64{100, 1000}
	ys := []float64{5, 500} // slope 1 in log-log... 500/5=100=10^2 over 10x => p=2
	p, err := GrowthExponent(xs, ys)
	if err != nil || math.Abs(p-2) > 1e-9 {
		t.Errorf("p = %g, %v", p, err)
	}
	if _, err := GrowthExponent([]float64{1}, []float64{1}); err == nil {
		t.Error("single sample accepted")
	}
	if _, err := GrowthExponent([]float64{1, 1}, []float64{1, 2}); err == nil {
		t.Error("equal xs accepted")
	}
}

func TestSummaries(t *testing.T) {
	xs := []float64{5, 1, 9, 3, 7}
	if m := Mean(xs); math.Abs(m-5) > 1e-12 {
		t.Errorf("Mean = %g", m)
	}
	if m := Median(xs); m != 5 {
		t.Errorf("Median = %g", m)
	}
	if m := Median([]float64{1, 2, 3, 4}); m != 2.5 {
		t.Errorf("even Median = %g", m)
	}
	if p := Percentile(xs, 100); p != 9 {
		t.Errorf("P100 = %g", p)
	}
	if p := Percentile(xs, 0); p != 1 {
		t.Errorf("P0 = %g", p)
	}
	if Mean(nil) != 0 || Median(nil) != 0 || Percentile(nil, 50) != 0 {
		t.Error("empty summaries")
	}
}
