package sub

import (
	"sync"

	"repro/internal/mod"
)

// Stream is one subscriber's view of a materialized subscription. The
// registry's pump goroutine pushes deltas; the consumer drains them with
// Ready/Pop. The queue is bounded: on overflow it coalesces into a
// single resync record (full answer, no incremental steps), and a
// consumer that forces too many consecutive coalesces without draining
// is evicted so it can never apply backpressure to the update path.
//
// Consumer loop:
//
//	for {
//		select {
//		case <-st.Ready():
//			for { d, ok := st.Pop(); if !ok { break }; ... }
//		case <-st.Done():
//			for { d, ok := st.Pop(); if !ok { break }; ... } // drain tail
//			return st.Err()
//		}
//	}
type Stream struct {
	reg  *Registry
	sub  *subscription
	kind Kind

	// Immutable after Subscribe returns.
	initT   float64
	initSeq uint64
	initial []mod.OID

	qcap  int
	maxCo int

	mu        sync.Mutex
	queue     []Delta
	notify    chan struct{}
	done      chan struct{}
	closed    bool
	detached  bool
	err       error
	coalesces int
}

func newStream(r *Registry, s *subscription) *Stream {
	return &Stream{
		reg:    r,
		sub:    s,
		kind:   s.q.Kind,
		qcap:   r.cfg.QueueCap,
		maxCo:  r.cfg.MaxCoalesce,
		notify: make(chan struct{}, 1),
		done:   make(chan struct{}),
	}
}

// Query returns the normalized query this stream watches.
func (st *Stream) Query() Query { return st.sub.q }

// Initial returns the full answer at subscription time and its
// timestamp. For k-NN the slice is in rank order (nearest first), for
// within it is ascending by OID. Deltas on the stream apply on top of
// this state and carry Seq > InitialSeq.
func (st *Stream) Initial() (t float64, answer []mod.OID) { return st.initT, st.initial }

// InitialSeq is the sequence number the initial answer corresponds to.
func (st *Stream) InitialSeq() uint64 { return st.initSeq }

// Ready is signaled whenever new deltas are queued. After each receive
// the consumer must drain with Pop until it returns false.
func (st *Stream) Ready() <-chan struct{} { return st.notify }

// Done is closed when the stream terminates: horizon reached, canceled,
// evicted, or registry closed. Queued deltas remain poppable.
func (st *Stream) Done() <-chan struct{} { return st.done }

// Err returns the terminal error: nil while live and after a normal
// horizon completion; ErrSlowConsumer, ErrCanceled, or ErrClosed
// otherwise.
func (st *Stream) Err() error {
	st.mu.Lock()
	defer st.mu.Unlock()
	return st.err
}

// Pop removes and returns the next queued delta. ok is false when the
// queue is empty (live stream: wait on Ready; terminated: stop).
func (st *Stream) Pop() (d Delta, ok bool) {
	st.mu.Lock()
	defer st.mu.Unlock()
	st.coalesces = 0
	if len(st.queue) == 0 {
		return Delta{}, false
	}
	d = st.queue[0]
	n := copy(st.queue, st.queue[1:])
	st.queue = st.queue[:n]
	return d, true
}

// Cancel detaches the subscriber. It is synchronous with respect to
// delivery: after Cancel returns, no further delta is queued or
// poppable on this stream. The backing subscription is torn down (on
// the registry's pump) once its last stream detaches.
func (st *Stream) Cancel() {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return
	}
	st.closed = true
	st.err = ErrCanceled
	st.queue = nil
	close(st.done)
	st.mu.Unlock()
	st.reg.detachAsync(st)
}

// push queues one delta; cur is the subscription's full answer after
// the delta (borrowed — copied only if coalescing needs it). coalesced
// reports a queue collapse; evict means the stream must be dropped for
// falling too far behind. Called only from the registry pump.
func (st *Stream) push(d Delta, cur []mod.OID) (coalesced, evict bool) {
	st.mu.Lock()
	if st.closed {
		st.mu.Unlock()
		return false, false
	}
	st.queue = append(st.queue, d)
	if len(st.queue) > st.qcap {
		coalesced = true
		st.coalesces++
		if st.coalesces > st.maxCo {
			st.queue = nil
			st.closed = true
			st.err = ErrSlowConsumer
			close(st.done)
			st.mu.Unlock()
			return true, true
		}
		st.coalesceLocked(d, cur)
	}
	if d.Done && !st.closed {
		st.closed = true
		close(st.done)
	}
	select {
	case st.notify <- struct{}{}:
	default:
	}
	st.mu.Unlock()
	return coalesced, false
}

// coalesceLocked collapses the whole queue into a single record. A
// queued terminal delta survives alone (it already renders every
// intermediate step moot); otherwise the queue becomes one resync
// carrying the full current answer at the newest timestamp.
func (st *Stream) coalesceLocked(last Delta, cur []mod.OID) {
	for _, q := range st.queue {
		if q.Done {
			st.queue = append(st.queue[:0], q)
			return
		}
	}
	res := Delta{
		T:      last.T,
		Seq:    last.Seq,
		Resync: true,
		Add:    append([]mod.OID(nil), cur...),
	}
	if st.kind == KNN {
		res.Order = res.Add
	}
	st.queue = append(st.queue[:0], res)
}

// closeWith terminates the stream from the registry side (registry
// Close) without queueing a delta. Idempotent.
func (st *Stream) closeWith(err error) {
	st.mu.Lock()
	if !st.closed {
		st.closed = true
		st.err = err
		close(st.done)
	}
	st.mu.Unlock()
}
