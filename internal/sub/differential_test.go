package sub_test

// Delta-stream equivalence harness: seeded random update streams driven
// through a sharded engine (P=1 and P=4) with a set of random k-NN and
// within subscriptions attached. After every update the deltas are
// replayed client-side and the replayed answer is compared with a fresh
// re-evaluation of the query over the engine's current snapshot — a
// brand-new plane-sweep session sharing none of the registry's
// incremental state. Agreement after every update across hundreds of
// scenarios is the evidence that the materialized answers are exactly
// the answers a client would get by re-asking.
//
// MOD_SUB_SCENARIOS overrides the scenario count (CI runs 500 under
// -race; each scenario runs at P=1 and P=4).

import (
	"errors"
	"fmt"
	"math"
	"math/rand"
	"os"
	"sort"
	"strconv"
	"testing"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/shard"
	"repro/internal/sub"
)

// subOracle re-evaluates q from scratch over snap: a fresh engine
// seeded just past the snapshot's last update. This is what the
// registry's replayed answer must equal at every ack point.
func subOracle(snap *mod.DB, q sub.Query) ([]mod.OID, error) {
	lo := math.Nextafter(snap.Tau(), math.Inf(1))
	if q.Hi <= lo {
		return nil, nil
	}
	e, err := query.NewEngine(query.EngineConfig{
		F: gdist.PointSq{Point: q.Point}, Lo: lo, Hi: q.Hi,
	})
	if err != nil {
		return nil, err
	}
	var out func() []mod.OID
	if q.Kind == sub.KNN {
		knn := query.NewKNN(q.K)
		if err := e.AddEvaluator(knn); err != nil {
			return nil, err
		}
		out = knn.Current
	} else {
		w := query.NewWithin(q.Radius * q.Radius)
		if err := e.AddEvaluator(w); err != nil {
			return nil, err
		}
		out = w.Current
	}
	if err := e.Seed(snap.Trajectories()); err != nil {
		return nil, err
	}
	return out(), nil
}

// subClient replays one stream's deltas the way a consumer would.
type subClient struct {
	st    *sub.Stream
	q     sub.Query
	label string
	set   map[mod.OID]bool
	order []mod.OID
	done  bool
}

func newSubClient(st *sub.Stream, label string) *subClient {
	c := &subClient{st: st, q: st.Query(), label: label, set: map[mod.OID]bool{}}
	_, initial := st.Initial()
	for _, o := range initial {
		c.set[o] = true
	}
	c.order = append(c.order, initial...)
	return c
}

// step drains and replays pending deltas; it returns an error on a
// malformed delta (double add, absent remove, missing k-NN order).
func (c *subClient) step() error {
	for {
		d, ok := c.st.Pop()
		if !ok {
			return nil
		}
		if d.Resync {
			c.set = map[mod.OID]bool{}
			for _, o := range d.Add {
				c.set[o] = true
			}
			c.order = append(c.order[:0], d.Add...)
			if c.q.Kind == sub.KNN {
				c.order = append(c.order[:0], d.Order...)
			}
		} else {
			for _, o := range d.Remove {
				if !c.set[o] {
					return fmt.Errorf("%s: delta removes absent %s", c.label, o)
				}
				delete(c.set, o)
			}
			for _, o := range d.Add {
				if c.set[o] {
					return fmt.Errorf("%s: delta re-adds %s", c.label, o)
				}
				c.set[o] = true
			}
			if c.q.Kind == sub.KNN {
				if d.Order == nil && (len(d.Add) > 0 || len(d.Remove) > 0) {
					return fmt.Errorf("%s: k-NN membership delta without order", c.label)
				}
				if d.Order != nil {
					c.order = append(c.order[:0], d.Order...)
				}
			}
		}
		if d.Done {
			c.done = true
			return nil
		}
	}
}

// current is the replayed answer in oracle form.
func (c *subClient) current() []mod.OID {
	if c.q.Kind == sub.KNN {
		return c.order
	}
	out := make([]mod.OID, 0, len(c.set))
	for o := range c.set {
		out = append(out, o)
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

func oidsMatch(a, b []mod.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// subScenario is one random workload, fully determined by its seed.
type subScenario struct {
	seed    int64
	initial []mod.Update // object creations applied before subscribing
	churn   []mod.Update // the stream driven through live subscriptions
	mid     int          // churn index at which the late queries subscribe
	early   []sub.Query
	late    []sub.Query
	batched bool // drive churn through ApplyBatch (parallel shard groups)
}

func makeSubScenario(seed int64) subScenario {
	rng := rand.New(rand.NewSource(seed))
	n := 6 + rng.Intn(15)
	m := 12 + rng.Intn(39)
	vec := func(s float64) geom.Vec {
		return geom.Of(s*(rng.Float64()-0.5), s*(rng.Float64()-0.5))
	}
	sc := subScenario{seed: seed, batched: rng.Intn(3) == 0}
	tau := 0.5
	for i := 0; i < n; i++ {
		sc.initial = append(sc.initial, mod.New(mod.OID(i+1), tau, vec(6), vec(120)))
		tau += 0.1 + 0.5*rng.Float64()
	}
	next := mod.OID(n + 1)
	dead := make(map[mod.OID]bool)
	for i := 0; i < m; i++ {
		o := mod.OID(rng.Intn(n) + 1)
		switch {
		case rng.Float64() < 0.12:
			sc.churn = append(sc.churn, mod.New(next, tau, vec(6), vec(120)))
			next++
		case rng.Float64() < 0.12 && !dead[o] && len(dead) < n-2:
			dead[o] = true
			sc.churn = append(sc.churn, mod.Terminate(o, tau))
		case !dead[o]:
			sc.churn = append(sc.churn, mod.ChDir(o, tau, vec(6)))
		default:
			continue
		}
		tau += 0.1 + 0.5*rng.Float64()
	}
	sc.mid = len(sc.churn) / 2
	// Horizons: mostly past the whole stream (the subscription outlives
	// the scenario), some landing inside it (exercising the horizon
	// completion path mid-stream).
	horizon := func() float64 {
		if rng.Float64() < 0.3 {
			return tau * (0.3 + 0.6*rng.Float64())
		}
		return tau + 50 + 100*rng.Float64()
	}
	mkQuery := func() sub.Query {
		if rng.Intn(2) == 0 {
			return sub.Query{Kind: sub.KNN, K: 1 + rng.Intn(4), Point: vec(100), Hi: horizon()}
		}
		r := 10 + 60*rng.Float64()
		return sub.Query{Kind: sub.Within, Radius: r, Point: vec(100), Hi: horizon()}
	}
	for i := 0; i < 2+rng.Intn(3); i++ {
		sc.early = append(sc.early, mkQuery())
	}
	for i := 0; i < 1+rng.Intn(2); i++ {
		sc.late = append(sc.late, mkQuery())
	}
	return sc
}

// runSubScenario drives one scenario at partition count p, checking
// every live client against the oracle after every update. Returns a
// divergence description ("" when equivalent) or a hard error.
func runSubScenario(sc subScenario, p int) (string, error) {
	eng, err := shard.New(shard.Config{Shards: p, Workers: p, Dim: 2, Tau0: -1})
	if err != nil {
		return "", err
	}
	for _, u := range sc.initial {
		if err := eng.Apply(u); err != nil {
			return "", fmt.Errorf("initial apply %s: %w", u, err)
		}
	}
	reg := sub.NewRegistry(eng, sub.Config{})
	defer reg.Close()

	var clients []*subClient
	subscribe := func(qs []sub.Query, tag string) error {
		for i, q := range qs {
			st, err := reg.Subscribe(q)
			if errors.Is(err, sub.ErrHorizon) {
				// A short-horizon query subscribed after the stream
				// already passed its window; legitimately rejected.
				continue
			}
			if err != nil {
				return fmt.Errorf("subscribe %s[%d]: %w", tag, i, err)
			}
			clients = append(clients, newSubClient(st, fmt.Sprintf("%s[%d]", tag, i)))
		}
		return nil
	}
	if err := subscribe(sc.early, "early"); err != nil {
		return "", err
	}

	check := func(step string) (string, error) {
		reg.Sync()
		snap := eng.Snapshot()
		for _, c := range clients {
			if c.done {
				continue
			}
			if err := c.step(); err != nil {
				return "", fmt.Errorf("%s: %w", step, err)
			}
			if c.done {
				continue
			}
			want, err := subOracle(snap, c.q)
			if err != nil {
				return "", fmt.Errorf("oracle %s: %w", c.label, err)
			}
			if got := c.current(); !oidsMatch(got, want) {
				return fmt.Sprintf("P=%d %s %s: replayed=%v oracle=%v (query %+v)",
					p, step, c.label, got, want, c.q), nil
			}
		}
		return "", nil
	}

	if d, err := check("post-subscribe"); d != "" || err != nil {
		return d, err
	}
	// Batched scenarios drive the stream in chunks through ApplyBatch:
	// the per-shard groups apply in parallel, so the registry observes a
	// cross-shard interleaving of the chronological stream — the
	// out-of-order tolerance the listener fan-in demands.
	chunk := 1
	if sc.batched {
		chunk = 4
	}
	lateDone := false
	for i := 0; i < len(sc.churn); i += chunk {
		if i >= sc.mid && !lateDone {
			lateDone = true
			if err := subscribe(sc.late, "late"); err != nil {
				return "", err
			}
		}
		end := i + chunk
		if end > len(sc.churn) {
			end = len(sc.churn)
		}
		if sc.batched {
			if _, err := eng.ApplyBatch(sc.churn[i:end]); err != nil {
				return "", fmt.Errorf("churn batch [%d,%d): %w", i, end, err)
			}
		} else if err := eng.Apply(sc.churn[i]); err != nil {
			return "", fmt.Errorf("churn apply %s: %w", sc.churn[i], err)
		}
		if d, err := check(fmt.Sprintf("after churn[%d:%d)", i, end)); d != "" || err != nil {
			return d, err
		}
	}
	return "", nil
}

func TestDifferentialSubscriptionsVsOracle(t *testing.T) {
	scenarios := 80
	if s := os.Getenv("MOD_SUB_SCENARIOS"); s != "" {
		n, err := strconv.Atoi(s)
		if err != nil || n < 1 {
			t.Fatalf("MOD_SUB_SCENARIOS=%q: %v", s, err)
		}
		scenarios = n
	}
	const baseSeed = 731000
	failures := 0
	for i := 0; i < scenarios; i++ {
		seed := baseSeed + int64(i)
		sc := makeSubScenario(seed)
		for _, p := range []int{1, 4} {
			d, err := runSubScenario(sc, p)
			if err != nil {
				t.Fatalf("seed %d P=%d: %v", seed, p, err)
			}
			if d == "" {
				continue
			}
			// Shrink the churn tail while the divergence persists.
			min, minD := sc, d
			for len(min.churn) > 1 {
				cand := min
				cand.churn = min.churn[:len(min.churn)-1]
				if cand.mid > len(cand.churn) {
					cand.mid = len(cand.churn)
				}
				cd, cerr := runSubScenario(cand, p)
				if cerr != nil || cd == "" {
					break
				}
				min, minD = cand, cd
			}
			t.Errorf("seed %d P=%d diverges: %s\nshrunk to %d churn updates (of %d): replay with makeSubScenario(%d), churn[:%d]",
				seed, p, minD, len(min.churn), len(sc.churn), seed, len(min.churn))
			if failures++; failures >= 3 {
				t.Fatal("stopping after 3 divergent seeds")
			}
		}
	}
	if failures == 0 {
		t.Logf("%d scenarios x P in {1,4}: replayed deltas equal fresh re-evaluation at every update, zero divergences", scenarios)
	}
}
