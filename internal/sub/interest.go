package sub

import (
	"math"
	"sort"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/rtree"
	"repro/internal/trajectory"
)

// padAbs is the absolute padding added to interest-box half-widths so
// the box strictly contains the candidate ball even after the rounding
// in sqrt and the corner subtractions. The box test is a conservative
// pre-filter; the exact per-piece segment-vs-ball test runs behind it.
const padAbs = 1e-9

// ballRect is the axis-aligned box of the ball with squared radius r2
// (inflated) around c.
func ballRect(c geom.Vec, r2 float64) rtree.Rect {
	r := math.Sqrt(inflate(r2))*(1+relEps) + padAbs
	lo := make(geom.Vec, len(c))
	hi := make(geom.Vec, len(c))
	for i, x := range c {
		lo[i] = x - r
		hi[i] = x + r
	}
	return rtree.Rect{Min: lo, Max: hi}
}

// interestIndex routes updates to subscriptions: a box R-tree over the
// candidate balls of finite-pool subscriptions, plus a side set of
// "global" subscriptions (infinite pool radius) that see every update.
// The R-tree is append-only; retiring an entry (pool refresh changes
// the ball, subscription ends) just drops it from the id map, and the
// tree is rebuilt from the live entries once tombstones outnumber them.
type interestIndex struct {
	dim     int
	tree    *rtree.RectTree
	entries map[uint64]*subscription // box id -> live owner
	globals map[uint64]*subscription // sid -> subscription with infinite pool
	dead    int
	nextBox uint64
}

func newInterestIndex(dim int) *interestIndex {
	return &interestIndex{
		dim:     dim,
		tree:    rtree.NewRectTree(dim, rtree.DefaultFanout),
		entries: make(map[uint64]*subscription),
		globals: make(map[uint64]*subscription),
	}
}

// add registers s under its current pool radius and remembers the box
// id on the subscription for later retirement.
func (ix *interestIndex) add(s *subscription) {
	if math.IsInf(s.poolR2, 1) {
		ix.globals[s.sid] = s
		s.boxID = 0
		return
	}
	ix.nextBox++
	s.boxID = ix.nextBox
	ix.entries[s.boxID] = s
	// Insert only fails on a dimension mismatch, which validate rules out.
	_ = ix.tree.Insert(rtree.RectItem{ID: s.boxID, R: ballRect(s.center, s.poolR2)})
}

// remove retires s's current registration (tree entry or global set).
func (ix *interestIndex) remove(s *subscription) {
	if math.IsInf(s.poolR2, 1) {
		delete(ix.globals, s.sid)
		return
	}
	if _, ok := ix.entries[s.boxID]; ok {
		delete(ix.entries, s.boxID)
		ix.dead++
	}
	if ix.dead > 16 && ix.dead > len(ix.entries) {
		ix.rebuild()
	}
}

// rebuild compacts tombstones away with an STR bulk load.
func (ix *interestIndex) rebuild() {
	items := make([]rtree.RectItem, 0, len(ix.entries))
	for id, s := range ix.entries {
		items = append(items, rtree.RectItem{ID: id, R: ballRect(s.center, s.poolR2)})
	}
	t, err := rtree.BulkRects(items, ix.dim, rtree.DefaultFanout)
	if err != nil {
		// Entries were validated on the way in; a failure here means the
		// index is corrupt and silently degrading routing would lose
		// deltas. Fail loudly.
		panic("sub: interest index rebuild: " + err.Error())
	}
	ix.tree = t
	ix.dead = 0
}

// visitSegment calls fn for every subscription whose candidate box the
// motion segment a→b touches, then for every global subscription. A
// subscription can be reported once per registration; callers dedup
// with epoch stamps.
func (ix *interestIndex) visitSegment(a, b geom.Vec, fn func(*subscription)) {
	ix.tree.VisitSegment(a, b, func(it rtree.RectItem) bool {
		if s, ok := ix.entries[it.ID]; ok {
			fn(s)
		}
		return true
	})
	for _, s := range ix.globals {
		fn(s)
	}
}

// visitAll calls fn for every registered subscription (used by
// terminate updates, which have no motion segment of their own — the
// routing segment comes from the object's trajectory instead).
func (ix *interestIndex) visitAll(fn func(*subscription)) {
	for _, s := range ix.entries {
		fn(s)
	}
	for _, s := range ix.globals {
		fn(s)
	}
}

// poolIndex accelerates pool construction at Subscribe time. Built once
// per database snapshot generation: every trajectory turn is <= the
// snapshot time, so from any lo past it an object follows its last
// piece forever — stationary objects (zero last velocity) go into a
// point R-tree, the rest into a movers list that each Subscribe scans
// with the exact segment test. With mostly-stationary populations this
// makes a Subscribe O(pool + movers + log N) instead of O(N).
type poolIndex struct {
	dim     int
	tree    *rtree.Tree
	movers  []poolEntry
	objects []poolEntry // every live object, for infinite pools
}

type poolEntry struct {
	o  mod.OID
	tr trajectory.Trajectory
}

// buildPoolIndex indexes the objects of snap that are alive at or after
// lo. Positions of stationary objects are their (constant) last-piece
// locations.
func buildPoolIndex(snap *mod.DB, lo float64) *poolIndex {
	dim := snap.Dim()
	ix := &poolIndex{dim: dim}
	var pts []rtree.Item
	for o, tr := range snap.Trajectories() {
		if !tr.IsDefined() || tr.End() <= lo {
			continue
		}
		ix.objects = append(ix.objects, poolEntry{o: o, tr: tr})
		last, err := tr.LastPiece()
		if err != nil {
			continue
		}
		if last.A.IsZero() {
			pts = append(pts, rtree.Item{ID: uint64(o), P: last.B})
		} else {
			ix.movers = append(ix.movers, poolEntry{o: o, tr: tr})
		}
	}
	sort.Slice(ix.objects, func(i, j int) bool { return ix.objects[i].o < ix.objects[j].o })
	t, err := rtree.Bulk(pts, dim, rtree.DefaultFanout)
	if err != nil {
		panic("sub: pool index build: " + err.Error())
	}
	ix.tree = t
	return ix
}

// collect appends (ascending by OID) every object whose trajectory can
// reach the ball (c, r2) during [lo, hi]. r2 = +Inf yields all live
// objects.
func (ix *poolIndex) collect(snap *mod.DB, c geom.Vec, r2, lo, hi float64, dst []poolEntry) []poolEntry {
	if math.IsInf(r2, 1) {
		return append(dst, ix.objects...)
	}
	base := len(dst)
	rad := math.Sqrt(inflate(r2))*(1+relEps) + padAbs
	// VisitRadius streams matches without materializing a result slice
	// (SearchRadius would allocate one per Subscribe).
	ix.tree.VisitRadius(c, rad, func(it rtree.Item) bool {
		o := mod.OID(it.ID)
		tr, err := snap.Traj(o)
		if err != nil {
			return true
		}
		// The box-radius search over-approximates; confirm exactly.
		if trajReaches(tr, c, r2, lo, hi) {
			dst = append(dst, poolEntry{o: o, tr: tr})
		}
		return true
	})
	for _, m := range ix.movers {
		if trajReaches(m.tr, c, r2, lo, hi) {
			dst = append(dst, m)
		}
	}
	tail := dst[base:]
	sort.Slice(tail, func(i, j int) bool { return tail[i].o < tail[j].o })
	return dst
}

// kthDist2 returns the squared distance of the k-th nearest live object
// to c at time lo, and the number of live objects considered. When
// fewer than k objects are alive, ok is false.
func (ix *poolIndex) kthDist2(c geom.Vec, lo float64, k int) (d2 float64, live int, ok bool) {
	live = len(ix.objects)
	if live < k {
		return 0, live, false
	}
	d2s := make([]float64, 0, k+len(ix.movers))
	for _, it := range ix.tree.NearestK(c, k) {
		d2s = append(d2s, it.P.Dist2(c))
	}
	for _, m := range ix.movers {
		p, err := m.tr.At(lo)
		if err != nil {
			// Mover starts strictly after lo cannot happen (turns <= snapshot
			// time); a terminated-by-lo object was filtered at build.
			continue
		}
		d2s = append(d2s, p.Dist2(c))
	}
	sort.Float64s(d2s)
	return d2s[k-1], live, true
}
