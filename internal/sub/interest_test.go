package sub

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

func TestTrajReaches(t *testing.T) {
	c := geom.Vec{0, 0}
	through := trajectory.Linear(0, geom.Vec{1, 0}, geom.Vec{-10, 1})
	if !trajReaches(through, c, 4, 0, 100) {
		t.Fatal("passing trajectory not detected")
	}
	if trajReaches(through, c, 4, 0, 5) { // window ends before closest approach at t=10
		t.Fatal("window clipping ignored")
	}
	miss := trajectory.Linear(0, geom.Vec{1, 0}, geom.Vec{-10, 5})
	if trajReaches(miss, c, 4, 0, 100) {
		t.Fatal("missing trajectory detected as reaching")
	}
	if !trajReaches(miss, c, math.Inf(1), 0, 100) {
		t.Fatal("infinite radius must always reach")
	}
	// Terminated before it arrives.
	term, err := through.Terminate(5)
	if err != nil {
		t.Fatal(err)
	}
	if trajReaches(term, c, 4, 0, 100) {
		t.Fatal("terminated trajectory still reaching")
	}
	// Exact boundary: closest approach lands exactly on the radius; the
	// inflation margin must keep it in.
	graze := trajectory.Linear(0, geom.Vec{1, 0}, geom.Vec{-10, 2})
	if !trajReaches(graze, c, 4, 0, 100) {
		t.Fatal("grazing trajectory excluded (inflation margin broken)")
	}
}

func TestInterestIndexRoutingAndRebuild(t *testing.T) {
	ix := newInterestIndex(2)
	mk := func(sid uint64, x, y, r2 float64) *subscription {
		s := &subscription{sid: sid, center: geom.Vec{x, y}, poolR2: r2}
		ix.add(s)
		return s
	}
	var subs []*subscription
	for i := 0; i < 60; i++ {
		subs = append(subs, mk(uint64(i), float64(i*10), 0, 4))
	}
	global := mk(1000, 0, 0, math.Inf(1))

	seen := make(map[uint64]bool)
	ix.visitSegment(geom.Vec{-5, 0}, geom.Vec{25, 0}, func(s *subscription) { seen[s.sid] = true })
	for _, want := range []uint64{0, 1, 2, 1000} {
		if !seen[want] {
			t.Fatalf("segment missed subscription %d (saw %v)", want, seen)
		}
	}
	if seen[5] {
		t.Fatal("segment reported an untouched subscription")
	}

	// Retire most entries; the tombstone threshold must trigger a
	// rebuild and routing must stay exact.
	for _, s := range subs[:50] {
		ix.remove(s)
	}
	if ix.dead > 16 && ix.dead > len(ix.entries) {
		t.Fatalf("tombstones not compacted: dead=%d live=%d", ix.dead, len(ix.entries))
	}
	seen = make(map[uint64]bool)
	ix.visitSegment(geom.Vec{495, 0}, geom.Vec{595, 0}, func(s *subscription) { seen[s.sid] = true })
	for i := uint64(50); i < 60; i++ {
		if !seen[i] {
			t.Fatalf("post-rebuild routing lost subscription %d", i)
		}
	}
	ix.remove(global)
	seen = make(map[uint64]bool)
	ix.visitSegment(geom.Vec{0, 0}, geom.Vec{0, 0}, func(s *subscription) { seen[s.sid] = true })
	if seen[1000] {
		t.Fatal("removed global subscription still routed")
	}
}

func TestPoolIndexCollectAndKth(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	db := mod.NewDB(2, 0)
	var oids []mod.OID
	for i := 1; i <= 200; i++ {
		o := mod.OID(i)
		pos := geom.Vec{rng.Float64()*100 - 50, rng.Float64()*100 - 50}
		vel := geom.Vec{0, 0}
		if i%5 == 0 {
			vel = geom.Vec{rng.Float64()*4 - 2, rng.Float64()*4 - 2}
		}
		if err := db.Load(o, trajectory.Linear(0, vel, pos)); err != nil {
			t.Fatal(err)
		}
		oids = append(oids, o)
	}
	snap := db.Snapshot()
	lo := math.Nextafter(snap.Tau(), math.Inf(1))
	idx := buildPoolIndex(snap, lo)

	center := geom.Vec{3, -7}
	const r2, hi = 81.0, 50.0
	got := idx.collect(snap, center, r2, lo, hi, nil)
	want := make(map[mod.OID]bool)
	for _, o := range oids {
		tr, err := snap.Traj(o)
		if err != nil {
			t.Fatal(err)
		}
		if trajReaches(tr, center, r2, lo, hi) {
			want[o] = true
		}
	}
	if len(got) != len(want) {
		t.Fatalf("collect: %d entries, brute force %d", len(got), len(want))
	}
	for i, pe := range got {
		if !want[pe.o] {
			t.Fatalf("collect included %s which cannot reach", pe.o)
		}
		if i > 0 && got[i-1].o >= pe.o {
			t.Fatal("collect output not ascending")
		}
	}
	if all := idx.collect(snap, center, math.Inf(1), lo, hi, nil); len(all) != len(oids) {
		t.Fatalf("infinite pool: %d entries, want %d", len(all), len(oids))
	}

	// kthDist2 against a brute-force sort of distances at lo.
	var d2s []float64
	for _, o := range oids {
		tr, _ := snap.Traj(o)
		p, err := tr.At(lo)
		if err != nil {
			t.Fatal(err)
		}
		d2s = append(d2s, p.Dist2(center))
	}
	sort.Float64s(d2s)
	for _, k := range []int{1, 7, 50} {
		got, live, ok := idx.kthDist2(center, lo, k)
		if !ok || live != len(oids) {
			t.Fatalf("kthDist2(%d): ok=%v live=%d", k, ok, live)
		}
		if got != d2s[k-1] {
			t.Fatalf("kthDist2(%d) = %v, want %v", k, got, d2s[k-1])
		}
	}
	if _, _, ok := idx.kthDist2(center, lo, len(oids)+1); ok {
		t.Fatal("kthDist2 beyond population must report !ok")
	}
}
