package sub

// Observability wiring, following the shard engine's pattern: an
// uninstrumented registry pays one atomic pointer load per record
// point. All families are plain (unlabeled) so every series renders a
// sample line even before traffic arrives.

import (
	"repro/internal/obs"
)

type metrics struct {
	active    *obs.Gauge // live materialized subscriptions
	streams   *obs.Gauge // attached subscriber streams
	routed    *obs.Counter
	deltas    *obs.Counter
	wakeups   *obs.Counter
	refreshes *obs.Counter
	resyncs   *obs.Counter
	coalesces *obs.Counter
	evictions *obs.Counter
	fanout    *obs.Histogram // subscriptions touched per routed update
	poolSize  *obs.Histogram // objects per subscription pool at (re)build
}

// Instrument registers the registry's metrics in reg and starts
// recording. Call once, before traffic.
func (r *Registry) Instrument(reg *obs.Registry) {
	m := &metrics{
		active: reg.NewGauge("sub_active",
			"live materialized subscriptions (shared across subscribers)"),
		streams: reg.NewGauge("sub_streams",
			"attached subscriber streams"),
		routed: reg.NewCounter("sub_updates_routed_total",
			"updates examined by the subscription registry"),
		deltas: reg.NewCounter("sub_deltas_total",
			"answer deltas emitted across all subscriptions"),
		wakeups: reg.NewCounter("sub_wakeups_total",
			"parked subscriptions advanced through a due kinetic event"),
		refreshes: reg.NewCounter("sub_pool_refreshes_total",
			"k-NN candidate pools rebuilt after a sufficiency violation"),
		resyncs: reg.NewCounter("sub_resyncs_total",
			"subscriptions rebuilt from a fresh snapshot (stale updates)"),
		coalesces: reg.NewCounter("sub_coalesces_total",
			"delta queues collapsed into a resync record (slow consumer)"),
		evictions: reg.NewCounter("sub_evictions_total",
			"subscriber streams evicted for never draining"),
		fanout: reg.NewHistogram("sub_fanout_width",
			"subscriptions touched per routed update", obs.DefSizeBuckets),
		poolSize: reg.NewHistogram("sub_pool_objects",
			"objects in a subscription's candidate pool at (re)build", obs.DefSizeBuckets),
	}
	r.metrics.Store(m)
}

func (r *Registry) recordRoute(fanout int) {
	m := r.metrics.Load()
	if m == nil {
		return
	}
	m.routed.Inc()
	m.fanout.Observe(float64(fanout))
}

func (r *Registry) recordDelta(coalesced, evicted int) {
	m := r.metrics.Load()
	if m == nil {
		return
	}
	m.deltas.Inc()
	if coalesced > 0 {
		m.coalesces.Add(uint64(coalesced))
	}
	if evicted > 0 {
		m.evictions.Add(uint64(evicted))
	}
}

func (r *Registry) recordWakeup() {
	if m := r.metrics.Load(); m != nil {
		m.wakeups.Inc()
	}
}

func (r *Registry) recordBuild(poolLen int, refresh, resync bool) {
	m := r.metrics.Load()
	if m == nil {
		return
	}
	m.poolSize.Observe(float64(poolLen))
	if refresh {
		m.refreshes.Inc()
	}
	if resync {
		m.resyncs.Inc()
	}
}

func (r *Registry) recordCounts(subs, streams int) {
	m := r.metrics.Load()
	if m == nil {
		return
	}
	m.active.Set(float64(subs))
	m.streams.Set(float64(streams))
}
