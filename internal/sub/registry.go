package sub

import (
	"container/heap"
	"math"
	"sync"
	"sync/atomic"

	"repro/internal/gdist"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/trajectory"
)

// Registry materializes continuing queries over a Source and maintains
// them under its update stream.
//
// Concurrency model: the Source's update listeners run under the
// database's notification lock and must never block or re-enter the
// update path, so the listener only appends the update to a task queue.
// A single pump goroutine owns every subscription structure — the
// interest index, the wake heap, the pools — and drains that queue;
// Subscribe/Sync/stream-detach are tasks on the same queue, which
// serializes them against routing without any lock ordering between the
// registry and the database shards. Per-shard listeners fire in
// chronological order, but two shards' listeners interleave arbitrarily,
// so the pump tolerates out-of-order arrival (applyStale).
type Registry struct {
	src Source
	cfg Config
	dim int

	mu     sync.Mutex
	cond   *sync.Cond
	tasks  []task
	closed bool

	// Everything below is owned by the pump goroutine.
	subs      map[string]*subscription
	trackedBy map[mod.OID]map[*subscription]struct{}
	interest  *interestIndex
	wake      wakeHeap
	tau       float64 // highest routed update time
	epoch     uint64  // routing dedup stamp
	nextSid   uint64
	maxHi     float64 // max horizon over live subscriptions
	nStreams  int
	targets   []*subscription // per-route scratch

	snap      *mod.DB
	snapIdx   *poolIndex
	snapLo    float64
	snapDirty bool

	metrics atomic.Pointer[metrics]
	wg      sync.WaitGroup
}

type task struct {
	u  mod.Update
	up bool
	fn func()
}

// NewRegistry starts a registry over src and hooks its update stream.
// Close releases the pump goroutine.
func NewRegistry(src Source, cfg Config) *Registry {
	r := &Registry{
		src:       src,
		cfg:       cfg.withDefaults(),
		dim:       src.Dim(),
		subs:      make(map[string]*subscription),
		trackedBy: make(map[mod.OID]map[*subscription]struct{}),
		tau:       src.Tau(),
	}
	r.cond = sync.NewCond(&r.mu)
	r.interest = newInterestIndex(r.dim)
	r.wg.Add(1)
	go r.pump()
	src.OnUpdate(func(u mod.Update) {
		r.mu.Lock()
		if !r.closed {
			r.tasks = append(r.tasks, task{u: u, up: true})
			r.cond.Signal()
		}
		r.mu.Unlock()
	})
	return r
}

// enqueue schedules fn on the pump; false after Close.
func (r *Registry) enqueue(fn func()) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.closed {
		return false
	}
	r.tasks = append(r.tasks, task{fn: fn})
	r.cond.Signal()
	return true
}

// pump drains the task queue until Close, then terminates every stream.
func (r *Registry) pump() {
	defer r.wg.Done()
	for {
		r.mu.Lock()
		for len(r.tasks) == 0 && !r.closed {
			r.cond.Wait()
		}
		batch := r.tasks
		r.tasks = nil
		closed := r.closed
		r.mu.Unlock()
		for _, t := range batch {
			if t.up {
				r.route(t.u)
			} else {
				t.fn()
			}
		}
		if closed && len(batch) == 0 {
			for _, s := range r.subs {
				s.done = true
				for _, st := range s.streams {
					st.closeWith(ErrClosed)
				}
			}
			return
		}
	}
}

// Close stops maintenance: queued work is drained, every live stream
// terminates with ErrClosed, and the pump exits. Idempotent.
func (r *Registry) Close() {
	r.mu.Lock()
	if r.closed {
		r.mu.Unlock()
		r.wg.Wait()
		return
	}
	r.closed = true
	r.cond.Broadcast()
	r.mu.Unlock()
	r.wg.Wait()
}

// Sync blocks until every update applied before the call has been
// routed — the "ack" point for delta visibility.
func (r *Registry) Sync() {
	ch := make(chan struct{})
	if !r.enqueue(func() { close(ch) }) {
		return
	}
	<-ch
}

// Counts reports live subscriptions and attached streams (post-Sync
// consistent).
func (r *Registry) Counts() (subs, streams int) {
	ch := make(chan struct{})
	if !r.enqueue(func() { subs, streams = len(r.subs), r.nStreams; close(ch) }) {
		return 0, 0
	}
	<-ch
	return subs, streams
}

// Subscribe registers a continuing query and returns its stream: the
// full answer at registration time plus deltas from there on.
// Bitwise-identical queries share one materialized subscription.
func (r *Registry) Subscribe(q Query) (*Stream, error) {
	q = q.normalized(r.cfg)
	if err := q.validate(r.dim, r.cfg.MaxHorizon); err != nil {
		return nil, err
	}
	var (
		st  *Stream
		err error
	)
	ch := make(chan struct{})
	ok := r.enqueue(func() {
		st, err = r.subscribe(q)
		close(ch)
	})
	if !ok {
		return nil, ErrClosed
	}
	<-ch
	return st, err
}

// subscribe runs on the pump.
func (r *Registry) subscribe(q Query) (*Stream, error) {
	key := q.key()
	s, ok := r.subs[key]
	if !ok {
		var err error
		s, err = r.buildSub(q)
		if err != nil {
			return nil, err
		}
		r.subs[key] = s
		if q.Hi > r.maxHi {
			r.maxHi = q.Hi
		}
	}
	st := newStream(r, s)
	st.initT = s.lastT
	st.initSeq = s.seq
	st.initial = append([]mod.OID(nil), s.cur...)
	s.streams = append(s.streams, st)
	r.nStreams++
	r.recordCounts(len(r.subs), r.nStreams)
	return st, nil
}

// detachAsync schedules a stream removal on the pump (from Cancel).
func (r *Registry) detachAsync(st *Stream) {
	r.enqueue(func() { r.dropStream(st) })
}

// dropStream unhooks one stream; the last detach tears the
// subscription down.
func (r *Registry) dropStream(st *Stream) {
	if st.detached {
		return
	}
	st.detached = true
	s := st.sub
	for i, o := range s.streams {
		if o == st {
			s.streams[i] = s.streams[len(s.streams)-1]
			s.streams = s.streams[:len(s.streams)-1]
			break
		}
	}
	r.nStreams--
	if len(s.streams) == 0 && !s.done {
		r.teardownSub(s)
	}
	r.recordCounts(len(r.subs), r.nStreams)
}

// snapshot returns the cached database snapshot (re-taken after any
// routed update), its pool index, and the seed time just past it.
func (r *Registry) snapshot() (*mod.DB, *poolIndex, float64) {
	if r.snap == nil || r.snapDirty {
		r.snap = r.src.Snapshot()
		r.snapLo = math.Nextafter(r.snap.Tau(), math.Inf(1))
		r.snapIdx = buildPoolIndex(r.snap, r.snapLo)
		r.snapDirty = false
	}
	return r.snap, r.snapIdx, r.snapLo
}

// Materialization reasons (metrics only).
const (
	buildInit = iota
	buildRefresh
	buildResync
)

// buildSub materializes a fresh subscription at the current snapshot.
func (r *Registry) buildSub(q Query) (*subscription, error) {
	_, _, lo := r.snapshot()
	if q.Hi <= lo {
		return nil, ErrHorizon
	}
	r.nextSid++
	s := &subscription{
		sid:            r.nextSid,
		key:            q.key(),
		q:              q,
		center:         q.Point,
		lastRefreshTau: math.Inf(-1),
	}
	if err := r.materialize(s, buildInit); err != nil {
		return nil, err
	}
	s.answer() // seed s.cur with the initial answer
	s.lastT = r.snap.Tau()
	r.reschedule(s)
	return s, nil
}

// materialize (re)builds s's engine over the current snapshot: pick the
// pool radius, seed a sweep over the candidate pool just past the
// snapshot time, and swap the interest registrations. On error s is
// left on its previous engine. Caller guarantees snapLo < s.q.Hi.
func (r *Registry) materialize(s *subscription, reason int) error {
	snap, idx, lo := r.snapshot()
	var poolR2 float64
	if s.q.Kind == Within {
		poolR2 = s.q.Radius * s.q.Radius
	} else {
		if d2k, _, ok := idx.kthDist2(s.center, lo, s.q.K); ok {
			poolR2 = 4 * d2k
			if poolR2 < 1e-12 {
				poolR2 = 1e-12
			}
		} else {
			poolR2 = math.Inf(1)
		}
		if s.lastRefreshTau == snap.Tau() { //modlint:allow floatcmp -- thrash guard: a second rebuild at the same instant means the doubled radius was still too tight
			poolR2 = math.Inf(1)
		}
	}
	s.lastRefreshTau = snap.Tau()

	eng, err := query.NewEngine(query.EngineConfig{
		F:  gdist.PointSq{Point: s.center},
		Lo: lo,
		Hi: s.q.Hi,
	})
	if err != nil {
		return err
	}
	var (
		knn    *query.KNN
		within *query.Within
	)
	if s.q.Kind == KNN {
		knn = query.NewKNN(s.q.K)
		err = eng.AddEvaluator(knn)
	} else {
		within = query.NewWithin(s.q.Radius * s.q.Radius)
		err = eng.AddEvaluator(within)
	}
	if err != nil {
		return err
	}
	var sentinel uint64
	if knn != nil && !math.IsInf(poolR2, 1) {
		if sentinel, err = eng.ConstID(poolR2); err != nil {
			return err
		}
	}
	pool := idx.collect(snap, s.center, poolR2, lo, s.q.Hi, nil)
	trajs := make(map[mod.OID]trajectory.Trajectory, len(pool))
	for _, pe := range pool {
		trajs[pe.o] = pe.tr
	}
	if err := eng.Seed(trajs); err != nil {
		return err
	}

	// Swap in: retire the old registrations (which depend on the old
	// pool radius) before overwriting it.
	if s.eng != nil {
		r.untrackAll(s)
		r.interest.remove(s)
	}
	s.eng, s.knn, s.within = eng, knn, within
	s.poolR2 = poolR2
	s.sentinel = sentinel
	s.tracked = make(map[mod.OID]struct{}, len(pool))
	for _, pe := range pool {
		s.tracked[pe.o] = struct{}{}
		r.track(pe.o, s)
	}
	r.interest.add(s)
	r.recordBuild(len(pool), reason == buildRefresh, reason == buildResync)
	return nil
}

func (r *Registry) track(o mod.OID, s *subscription) {
	m := r.trackedBy[o]
	if m == nil {
		m = make(map[*subscription]struct{})
		r.trackedBy[o] = m
	}
	m[s] = struct{}{}
}

func (r *Registry) untrack(o mod.OID, s *subscription) {
	if m := r.trackedBy[o]; m != nil {
		delete(m, s)
		if len(m) == 0 {
			delete(r.trackedBy, o)
		}
	}
}

func (r *Registry) untrackAll(s *subscription) {
	for o := range s.tracked {
		r.untrack(o, s)
	}
}

// route feeds one database update through the interest index to the
// affected subscriptions. Wakes due at or before the update time run
// first, so their deltas carry exact kinetic event timestamps.
func (r *Registry) route(u mod.Update) {
	if u.Tau > r.tau {
		r.tau = u.Tau
	}
	r.snapDirty = true
	r.processWakes(u.Tau)
	if u.Kind == mod.KindBound {
		// Speed-bound declarations feed the uncertainty layer only; the
		// authoritative trajectories — and therefore every continuing
		// query's answer — are unchanged. Routing one into a pool engine
		// would be rejected as an unknown kind and force a full resync.
		r.recordRoute(0)
		return
	}
	if len(r.subs) == 0 {
		r.recordRoute(0)
		return
	}
	r.epoch++
	r.targets = r.targets[:0]
	collect := func(s *subscription) {
		if s.done || s.routeEpoch == r.epoch {
			return
		}
		s.routeEpoch = r.epoch
		r.targets = append(r.targets, s)
	}
	if m := r.trackedBy[u.O]; m != nil {
		for s := range m {
			collect(s)
		}
	}
	if u.Kind != mod.KindTerminate {
		// Route by where the object can travel: every authoritative
		// trajectory piece overlapping [tau, maxHi], tested against the
		// interest boxes. (Terminations only matter to subscriptions
		// already tracking the object.)
		hR := math.Min(r.cfg.MaxHorizon, r.maxHi)
		tr, err := r.src.Traj(u.O)
		if err != nil {
			if u.Kind != mod.KindNew {
				tr = trajectory.Trajectory{}
			} else {
				tr = trajectory.Linear(u.Tau, u.A, u.B)
			}
		}
		for _, pc := range tr.Pieces() {
			t0 := math.Max(u.Tau, pc.Start)
			t1 := math.Min(hR, pc.End)
			if t1 < t0 {
				continue
			}
			r.interest.visitSegment(pc.At(t0), pc.At(t1), collect)
		}
	}
	r.recordRoute(len(r.targets))
	for _, s := range r.targets {
		r.applyToSub(s, u)
	}
	// An out-of-order update (stale globally, fresh for a lagging
	// subscription) can park a wake at an instant the stream has already
	// passed — the kinetic events between u.Tau and the high-water mark
	// only became knowable once this update's curve replacement landed.
	// Drain them now so Sync-visible answers never lag r.tau.
	r.processWakes(r.tau)
}

// processWakes advances every subscription whose next kinetic event (or
// horizon) is due at or before upTo.
func (r *Registry) processWakes(upTo float64) {
	for len(r.wake) > 0 && r.wake[0].t <= upTo {
		e := heap.Pop(&r.wake).(wakeEntry)
		if e.s.done || e.gen != e.s.wakeGen {
			continue
		}
		r.recordWakeup()
		r.advanceSub(e.s, e.t)
	}
}

// advanceSub steps s's sweep to t (a due event time), emitting the
// resulting delta with the exact event timestamp.
func (r *Registry) advanceSub(s *subscription, t float64) {
	if t >= s.q.Hi {
		r.finishSub(s)
		return
	}
	if err := s.eng.RunTo(t); err != nil {
		r.resyncSub(s)
		return
	}
	if s.poolInsufficient() {
		r.refreshSub(s)
		return
	}
	r.emitDelta(s, t)
	r.reschedule(s)
}

// applyToSub ingests one routed update into s's pool engine.
func (r *Registry) applyToSub(s *subscription, u mod.Update) {
	if s.done {
		return
	}
	if u.Tau >= s.q.Hi {
		r.finishSub(s)
		return
	}
	if u.Tau < s.eng.Sweeper().Now() {
		r.applyStale(s, u)
		return
	}
	_, tracked := s.tracked[u.O]
	switch u.Kind {
	case mod.KindNew:
		if !tracked {
			if !trajReaches(trajectory.Linear(u.Tau, u.A, u.B), s.center, s.poolR2, u.Tau, s.q.Hi) {
				return
			}
			if err := s.eng.ApplyUpdate(u); err != nil {
				r.resyncSub(s)
				return
			}
			s.tracked[u.O] = struct{}{}
			r.track(u.O, s)
		}
	case mod.KindChDir:
		if tracked {
			if err := s.eng.ApplyUpdate(u); err != nil {
				r.resyncSub(s)
				return
			}
		} else {
			tr, err := r.src.Traj(u.O)
			if err != nil {
				return
			}
			if !trajReaches(tr, s.center, s.poolR2, u.Tau, s.q.Hi) {
				return
			}
			if err := s.eng.InsertObject(u.O, tr, u.Tau); err != nil {
				r.resyncSub(s)
				return
			}
			s.tracked[u.O] = struct{}{}
			r.track(u.O, s)
		}
	case mod.KindTerminate:
		if !tracked {
			return
		}
		if err := s.eng.ApplyUpdate(u); err != nil {
			r.resyncSub(s)
			return
		}
		delete(s.tracked, u.O)
		r.untrack(u.O, s)
	}
	if s.poolInsufficient() {
		r.refreshSub(s)
		return
	}
	r.emitDelta(s, u.Tau)
	r.reschedule(s)
}

// applyStale handles an update whose time precedes the sweep's clock —
// a cross-shard interleaving, or a subscription built from a snapshot
// that already included the update. Reflected effects are skipped;
// un-reflected ones are grafted in at the current sweep time with the
// authoritative trajectory (exact: curve pieces are clip-start
// independent), falling back to a full rebuild where grafting cannot
// express the change.
func (r *Registry) applyStale(s *subscription, u mod.Update) {
	now := s.eng.Sweeper().Now()
	_, tracked := s.tracked[u.O]
	switch u.Kind {
	case mod.KindNew:
		if tracked {
			return // snapshot already carried the object
		}
		if !r.graftStale(s, u.O, now) {
			return
		}
	case mod.KindChDir:
		if tracked {
			if etr, ok := s.eng.Traj(u.O); ok && hasBreakAt(etr, u.Tau) {
				return // snapshot already carried the turn
			}
			r.resyncSub(s)
			return
		}
		if !r.graftStale(s, u.O, now) {
			return
		}
	case mod.KindTerminate:
		if !tracked {
			return
		}
		etr, ok := s.eng.Traj(u.O)
		if ok && etr.IsTerminated() && etr.End() == u.Tau { //modlint:allow floatcmp -- reflected-update check: the snapshot recorded this exact terminate instant
			return
		}
		r.resyncSub(s)
		return
	}
	if s.poolInsufficient() {
		r.refreshSub(s)
		return
	}
	r.emitDelta(s, now)
	r.reschedule(s)
}

// graftStale inserts an untracked object's authoritative trajectory at
// the current sweep time; false means nothing changed (irrelevant or
// already gone) or the failure path already ran.
func (r *Registry) graftStale(s *subscription, o mod.OID, now float64) bool {
	tr, err := r.src.Traj(o)
	if err != nil || !tr.IsDefined() || tr.End() <= now {
		return false
	}
	if !trajReaches(tr, s.center, s.poolR2, now, s.q.Hi) {
		return false
	}
	if err := s.eng.InsertObject(o, tr, now); err != nil {
		r.resyncSub(s)
		return false
	}
	s.tracked[o] = struct{}{}
	r.track(o, s)
	return true
}

// hasBreakAt reports a piece boundary exactly at tau.
func hasBreakAt(tr trajectory.Trajectory, tau float64) bool {
	for _, b := range tr.Breaks() {
		if b == tau { //modlint:allow floatcmp -- reflected-update check: the snapshot recorded this exact chdir instant
			return true
		}
	}
	return false
}

// refreshSub rebuilds the pool after a sufficiency violation.
func (r *Registry) refreshSub(s *subscription) { r.rebuildSub(s, buildRefresh) }

// resyncSub rebuilds after an engine fault or an inexpressible stale
// update.
func (r *Registry) resyncSub(s *subscription) { r.rebuildSub(s, buildResync) }

func (r *Registry) rebuildSub(s *subscription, reason int) {
	_, _, lo := r.snapshot()
	if lo >= s.q.Hi {
		r.finishSub(s)
		return
	}
	if err := r.materialize(s, reason); err != nil {
		r.killSub(s, err)
		return
	}
	t := r.snap.Tau()
	if t < s.lastT {
		t = s.lastT
	}
	r.emitDelta(s, t)
	r.reschedule(s)
}

// emitDelta diffs the evaluator's answer against the last delivered one
// and pushes the change (if any) to every stream. The no-change path
// does not allocate.
func (r *Registry) emitDelta(s *subscription, t float64) {
	add, remove, order, changed := s.answer()
	if !changed {
		return
	}
	s.seq++
	s.lastT = t
	r.deliver(s, Delta{T: t, Seq: s.seq, Add: add, Remove: remove, Order: order})
}

// deliver pushes d to every attached stream and drops the evicted.
func (r *Registry) deliver(s *subscription, d Delta) {
	coalesced, evicted := 0, 0
	var dead []*Stream
	for _, st := range s.streams {
		co, ev := st.push(d, s.cur)
		if co {
			coalesced++
		}
		if ev {
			evicted++
			dead = append(dead, st)
		}
	}
	r.recordDelta(coalesced, evicted)
	for _, st := range dead {
		r.dropStream(st)
	}
}

// finishSub closes out a subscription whose window has ended: step
// through the remaining kinetic events just short of the horizon (so
// their deltas carry true timestamps, and the wholesale curve expiry
// at the horizon itself emits no bogus "all removed" delta), then
// deliver the terminal record at the horizon.
func (r *Registry) finishSub(s *subscription) {
	if s.done {
		return
	}
	hiM := math.Nextafter(s.q.Hi, math.Inf(-1))
	for {
		t, ok := s.eng.NextEventTime()
		if !ok || t >= hiM {
			break
		}
		if err := s.eng.RunTo(t); err != nil {
			r.killSub(s, err)
			return
		}
		r.emitDelta(s, t)
	}
	s.seq++
	r.deliver(s, Delta{T: s.q.Hi, Seq: s.seq, Done: true})
	r.teardownSub(s)
}

// killSub terminates a subscription on an internal fault.
func (r *Registry) killSub(s *subscription, err error) {
	if s.done {
		return
	}
	s.seq++
	r.deliver(s, Delta{T: s.lastT, Seq: s.seq, Done: true, Err: err.Error()})
	r.teardownSub(s)
}

// teardownSub retires a subscription from every structure.
func (r *Registry) teardownSub(s *subscription) {
	if s.done {
		return
	}
	s.done = true
	s.wakeGen++
	for _, st := range s.streams {
		st.detached = true
		r.nStreams--
	}
	s.streams = nil
	r.untrackAll(s)
	r.interest.remove(s)
	delete(r.subs, s.key)
	if s.q.Hi >= r.maxHi {
		r.maxHi = 0
		for _, o := range r.subs {
			if o.q.Hi > r.maxHi {
				r.maxHi = o.q.Hi
			}
		}
	}
	r.recordCounts(len(r.subs), r.nStreams)
}

// reschedule re-parks s at its next due instant: the earlier of its
// next kinetic event and its horizon.
func (r *Registry) reschedule(s *subscription) {
	s.wakeGen++
	if s.done {
		return
	}
	key := s.q.Hi
	if et, ok := s.eng.NextEventTime(); ok && et < key {
		key = et
	}
	heap.Push(&r.wake, wakeEntry{t: key, gen: s.wakeGen, s: s})
}

// wakeEntry parks one subscription until time t; gen invalidates
// superseded entries (lazy deletion).
type wakeEntry struct {
	t   float64
	gen uint64
	s   *subscription
}

type wakeHeap []wakeEntry

func (h wakeHeap) Len() int { return len(h) }
func (h wakeHeap) Less(i, j int) bool {
	if h[i].t != h[j].t { //modlint:allow floatcmp -- comparator: strict weak ordering needs exact compares
		return h[i].t < h[j].t
	}
	return h[i].s.sid < h[j].s.sid
}
func (h wakeHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *wakeHeap) Push(x interface{}) { *h = append(*h, x.(wakeEntry)) }
func (h *wakeHeap) Pop() interface{} {
	old := *h
	n := len(old)
	e := old[n-1]
	*h = old[:n-1]
	return e
}
