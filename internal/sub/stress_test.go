package sub_test

// Churn stress: a single chronological update storm races subscriber
// churn (subscribe, drain a while, cancel), deliberately slow consumers
// (never pop, tight queues), and durable checkpoints; run under -race
// in CI. The assertions are liveness (the test finishes), delivery-
// contract safety (no delta poppable after Cancel, sequence numbers
// strictly increase), and eviction (every slow consumer ends with
// ErrSlowConsumer while the update path keeps making progress).
//
// Eviction is asserted in a deterministic second phase: how many deltas
// the racy storm yields depends on how far the pump lags the appliers —
// a lagging pump rebuilds subscriptions from a snapshot that already
// absorbed most of the storm, legitimately collapsing hundreds of
// answer changes into a few records. So after the storm one fresh
// object zigzags across every slow consumer's radius with a Sync
// between legs: each leg is exactly one guaranteed membership flip,
// and a handful of flips overflows a QueueCap=2/MaxCoalesce=2 queue
// regardless of how the storm interleaved.

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"
	"time"

	"repro/internal/durable"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/sub"
)

func TestStressChurnEvictionCheckpoint(t *testing.T) {
	if testing.Short() {
		t.Skip("stress test")
	}
	eng, err := durable.Open(t.TempDir(), durable.Config{
		Shards: 4, Workers: 4, Dim: 2, Tau0: -1, NoFlushEach: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	defer eng.Close()

	// Hot region around the origin: every query point lands in it, so
	// answers churn across all subscriptions.
	const nObjects = 24
	rng := rand.New(rand.NewSource(97))
	vec := func(s float64) geom.Vec {
		return geom.Of(s*(rng.Float64()-0.5), s*(rng.Float64()-0.5))
	}
	tau := 0.0
	for i := 1; i <= nObjects; i++ {
		tau += 0.01
		if err := eng.Apply(mod.New(mod.OID(i), tau, vec(4), vec(60))); err != nil {
			t.Fatal(err)
		}
	}

	reg := sub.NewRegistry(eng, sub.Config{QueueCap: 2, MaxCoalesce: 2})
	defer reg.Close()

	const updates = 1500
	storm := make([]mod.Update, 0, updates)
	for i := 0; i < updates; i++ {
		tau += 0.01 + 0.03*rng.Float64()
		o := mod.OID(rng.Intn(nObjects) + 1)
		storm = append(storm, mod.ChDir(o, tau, vec(4)))
	}

	done := make(chan struct{})
	errs := make(chan error, 16)
	var wg sync.WaitGroup

	// Slow consumers: subscribe and never pop.
	slow := make([]*sub.Stream, 0, 3)
	for i := 0; i < 3; i++ {
		st, err := reg.Subscribe(sub.Query{Kind: sub.Within, Radius: 20 + 5*float64(i), Point: geom.Of(0, 0)})
		if err != nil {
			t.Fatal(err)
		}
		slow = append(slow, st)
	}

	// Churners: subscribe, replay deltas (validating the protocol), then
	// cancel mid-stream and verify nothing is poppable afterwards.
	for c := 0; c < 4; c++ {
		wg.Add(1)
		go func(c int) {
			defer wg.Done()
			crng := rand.New(rand.NewSource(int64(1000 + c)))
			for round := 0; ; round++ {
				select {
				case <-done:
					return
				default:
				}
				var q sub.Query
				if crng.Intn(2) == 0 {
					q = sub.Query{Kind: sub.KNN, K: 1 + crng.Intn(3),
						Point: geom.Of(10*(crng.Float64()-0.5), 10*(crng.Float64()-0.5))}
				} else {
					q = sub.Query{Kind: sub.Within, Radius: 10 + 20*crng.Float64(),
						Point: geom.Of(10*(crng.Float64()-0.5), 10*(crng.Float64()-0.5))}
				}
				st, err := reg.Subscribe(q)
				if err != nil {
					errs <- fmt.Errorf("churner %d: subscribe: %w", c, err)
					return
				}
				client := newSubClient(st, fmt.Sprintf("churner%d/%d", c, round))
				lastSeq := st.InitialSeq()
				deadline := time.After(10 * time.Millisecond)
			drainLoop:
				for {
					select {
					case <-st.Ready():
						for {
							d, ok := st.Pop()
							if !ok {
								break
							}
							if d.Seq <= lastSeq {
								errs <- fmt.Errorf("churner %d: seq %d after %d", c, d.Seq, lastSeq)
								return
							}
							lastSeq = d.Seq
						}
					case <-st.Done():
						break drainLoop
					case <-deadline:
						break drainLoop
					}
				}
				_ = client
				st.Cancel()
				if d, ok := st.Pop(); ok {
					errs <- fmt.Errorf("churner %d: delta (seq %d) poppable after Cancel", c, d.Seq)
					return
				}
				// Even after the registry processes more updates and the
				// detach, the canceled stream must stay empty.
				reg.Sync()
				if d, ok := st.Pop(); ok {
					errs <- fmt.Errorf("churner %d: delta (seq %d) poppable after Cancel+Sync", c, d.Seq)
					return
				}
				if err := st.Err(); err != sub.ErrCanceled {
					errs <- fmt.Errorf("churner %d: Err after Cancel = %v", c, err)
					return
				}
			}
		}(c)
	}

	// Checkpointer: races shard checkpoints against both phases.
	wg.Add(1)
	go func() {
		defer wg.Done()
		for {
			select {
			case <-done:
				return
			case <-time.After(5 * time.Millisecond):
				if _, err := eng.Checkpoint(); err != nil {
					errs <- fmt.Errorf("checkpoint: %w", err)
					return
				}
			}
		}
	}()

	// Phase 1 — the storm: chronological, batched so the per-shard groups
	// interleave at the registry, racing the churners and checkpointer.
	for i := 0; i < len(storm); i += 8 {
		end := i + 8
		if end > len(storm) {
			end = len(storm)
		}
		if _, err := eng.ApplyBatch(storm[i:end]); err != nil {
			t.Fatal(err)
		}
	}

	// Phase 2 — deterministic eviction. One fresh object oscillates
	// between r=10 (inside all three slow radii) and r=40 (outside all),
	// one Synced update per leg; every leg flips every slow consumer's
	// membership, so their queues must overflow within a handful of legs.
	// The churners and checkpointer are still racing.
	evicted := func() bool {
		for _, st := range slow {
			select {
			case <-st.Done():
			default:
				return false
			}
		}
		return true
	}
	zig := mod.OID(nObjects + 1)
	tau += 1
	if err := eng.Apply(mod.New(zig, tau, geom.Of(10, 0), geom.Of(10, 0))); err != nil {
		t.Fatal(err)
	}
	vx := 10.0
	for leg := 0; leg < 60 && !evicted(); leg++ {
		tau += 3
		vx = -vx
		if err := eng.Apply(mod.ChDir(zig, tau, geom.Of(vx, 0))); err != nil {
			t.Fatal(err)
		}
		reg.Sync()
	}
	if !evicted() {
		t.Fatal("slow consumers not evicted after 60 membership flips")
	}
	for i, st := range slow {
		if err := st.Err(); err != sub.ErrSlowConsumer {
			t.Errorf("slow consumer %d: Err = %v, want ErrSlowConsumer", i, err)
		}
	}

	close(done)
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}

	// All churner streams canceled, all slow consumers evicted: after a
	// sync the registry must be empty again.
	reg.Sync()
	if subs, streams := reg.Counts(); subs != 0 || streams != 0 {
		t.Errorf("counts after churn = (%d, %d), want (0, 0)", subs, streams)
	}
}
