// Package sub is the materialized-subscription engine for future and
// continuing queries: register a k-NN or within query once and receive
// its initial answer plus a stream of deltas (add/remove/reorder with
// timestamps) as the database evolves under new/terminate/chdir.
//
// This is the serving-layer realization of the paper's Section 5
// maintenance results. Each subscription owns one small plane-sweep
// engine (query.Engine) over a *candidate pool* — the objects whose
// trajectories can reach the query region — rather than the whole
// database, and a registry routes each update only to the subscriptions
// whose support it can change:
//
//   - a spatial interest index (rtree.RectTree over candidate-ball
//     bounding boxes) matches an update's motion segment against
//     subscription regions, so per-update cost is proportional to the
//     number of affected subscriptions, not the subscriber count;
//   - a wake heap keyed by each subscription's next kinetic event time
//     (core.Sweeper.NextEventTime) parks untouched subscriptions: their
//     answers are provably constant between events, so they pay nothing
//     while other objects churn;
//   - k-NN pools carry a constant sentinel curve at the pool radius;
//     the sweep itself schedules the "k-th neighbor left the pool"
//     event, and the registry refreshes the pool (doubling discipline)
//     exactly when sufficiency is violated.
//
// Exactness: pool curves are built from the authoritative trajectories
// (gdist curve coefficients are independent of the clip start), so a
// subscription's current answer is bitwise the answer a fresh
// full-database session reports at the same instant — the property the
// differential harness pins across P=1 and P=4 backends.
//
// Delivery is per-subscriber: bounded queues, coalescing to a resync
// record on overflow, and slow-consumer eviction, so one stalled client
// never stalls the update path or its sibling subscribers.
package sub

import (
	"errors"
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

// Kind selects the maintained query type.
type Kind int

const (
	// KNN maintains the k nearest neighbors of a fixed point.
	KNN Kind = iota + 1
	// Within maintains the set of objects within Radius of a fixed point.
	Within
)

// String names the kind.
func (k Kind) String() string {
	switch k {
	case KNN:
		return "knn"
	case Within:
		return "within"
	default:
		return fmt.Sprintf("kind(%d)", int(k))
	}
}

// Query describes one continuing query.
type Query struct {
	Kind Kind
	// K is the neighbor count (KNN only).
	K int
	// Radius is the plain (not squared) distance threshold (Within only).
	Radius float64
	// Point is the query center.
	Point geom.Vec
	// Hi is the absolute end of the watch window; 0 means "until the
	// registry's MaxHorizon".
	Hi float64
}

// Errors surfaced by the registry.
var (
	// ErrClosed is returned by Subscribe after Close.
	ErrClosed = errors.New("sub: registry closed")
	// ErrHorizon is returned when the requested window ends at or before
	// the database's current time.
	ErrHorizon = errors.New("sub: horizon not after now")
	// ErrSlowConsumer is a stream's terminal error when it was evicted
	// for not draining its delta queue.
	ErrSlowConsumer = errors.New("sub: slow consumer evicted")
	// ErrCanceled is a stream's terminal error after Cancel.
	ErrCanceled = errors.New("sub: subscription canceled")
)

// normalized resolves the unset-horizon sentinel against the registry
// configuration and defensively copies the point.
func (q Query) normalized(cfg Config) Query {
	if q.Hi == 0 { //modlint:allow floatcmp -- unset-field sentinel: absent horizon decodes to exactly 0
		q.Hi = cfg.MaxHorizon
	}
	q.Point = q.Point.Clone()
	return q
}

// validate rejects malformed queries: NaN/Inf point components poison
// every distance comparison in the sweep, so they are refused up front.
func (q Query) validate(dim int, maxHorizon float64) error {
	switch q.Kind {
	case KNN:
		if q.K < 1 {
			return fmt.Errorf("sub: k-NN needs k >= 1, got %d", q.K)
		}
	case Within:
		if math.IsNaN(q.Radius) || math.IsInf(q.Radius, 0) || q.Radius < 0 {
			return fmt.Errorf("sub: within needs a finite radius >= 0, got %g", q.Radius)
		}
	default:
		return fmt.Errorf("sub: unknown query kind %d", int(q.Kind))
	}
	if q.Point.Dim() != dim {
		return fmt.Errorf("sub: point has %d components, database dim %d", q.Point.Dim(), dim)
	}
	for i, x := range q.Point {
		if math.IsNaN(x) || math.IsInf(x, 0) {
			return fmt.Errorf("sub: point component %d is %g", i, x)
		}
	}
	if math.IsNaN(q.Hi) || math.IsInf(q.Hi, 0) || q.Hi < 0 {
		return fmt.Errorf("sub: horizon must be a finite time >= 0, got %g", q.Hi)
	}
	if q.Hi > maxHorizon {
		return fmt.Errorf("sub: horizon %g beyond registry max %g", q.Hi, maxHorizon)
	}
	return nil
}

// key is the subscription-sharing identity: two Subscribe calls with
// bitwise-identical queries attach to one materialized subscription.
func (q Query) key() string {
	var b strings.Builder
	b.WriteString(q.Kind.String())
	b.WriteByte('/')
	if q.Kind == KNN {
		b.WriteString(strconv.Itoa(q.K))
	} else {
		b.WriteString(strconv.FormatUint(math.Float64bits(q.Radius), 16))
	}
	b.WriteByte('/')
	b.WriteString(strconv.FormatUint(math.Float64bits(q.Hi), 16))
	for _, x := range q.Point {
		b.WriteByte('/')
		b.WriteString(strconv.FormatUint(math.Float64bits(x), 16))
	}
	return b.String()
}

// Delta is one incremental answer change, stamped with the instant it
// took effect. Seq increases by one per delta on the subscription; a
// client that observes a gap (after queue coalescing) receives a Resync
// record carrying the full answer instead of an incremental step.
type Delta struct {
	// T is the time the change took effect (an update or kinetic event
	// instant, or the horizon for Done).
	T float64
	// Seq is the subscription's delta sequence number.
	Seq uint64
	// Add lists objects that entered the answer, ascending.
	Add []mod.OID
	// Remove lists objects that left the answer, ascending.
	Remove []mod.OID
	// Order is the full ranked answer (nearest first) whenever the k-NN
	// ranking changed — including pure reorders with empty Add/Remove.
	// Empty for within subscriptions.
	Order []mod.OID
	// Resync marks a full-state record: Add (and Order for k-NN) carry
	// the complete answer; the client replaces its state.
	Resync bool
	// Done marks the terminal record (horizon reached, or Err set).
	Done bool
	// Err is the terminal error, if the subscription failed or the
	// stream was evicted.
	Err string
}

// Source is the database a registry maintains subscriptions over; it is
// implemented by shard.Engine (and, through embedding, durable.Engine).
type Source interface {
	Dim() int
	Tau() float64
	Snapshot() *mod.DB
	Traj(o mod.OID) (trajectory.Trajectory, error)
	OnUpdate(l mod.Listener)
}

// Config tunes a registry.
type Config struct {
	// MaxHorizon bounds open-ended subscriptions (Hi == 0). Default 1e9.
	MaxHorizon float64
	// QueueCap bounds each subscriber's delta queue; an overflowing
	// queue coalesces into one resync record. Default 64.
	QueueCap int
	// MaxCoalesce is how many consecutive resync-coalesces (with no
	// intervening drain) a subscriber survives before eviction.
	// Default 64.
	MaxCoalesce int
}

func (c Config) withDefaults() Config {
	if c.MaxHorizon <= 0 {
		c.MaxHorizon = 1e9
	}
	if c.QueueCap <= 0 {
		c.QueueCap = 64
	}
	if c.MaxCoalesce <= 0 {
		c.MaxCoalesce = 64
	}
	return c
}

// relEps and absEps inflate candidate-ball acceptance tests so float
// rounding in the segment-distance computation can never exclude an
// object whose curve the sweep would judge to reach the region.
const (
	relEps = 1e-9
	absEps = 1e-12
)

// inflate widens a squared-radius threshold for pool-membership tests.
func inflate(r2 float64) float64 { return r2*(1+relEps) + absEps }

// segMinDist2 returns the minimum of |p(t) - c|^2 over the motion
// segment p(t) = pos + (t-t0)*vel for t in [t0, t1]: the quadratic in
// dt = t-t0 is minimized at the clamped vertex.
func segMinDist2(pos, vel, c geom.Vec, t0, t1 float64) float64 {
	// d(dt) = |D + dt*vel|^2, D = pos - c.
	var dd, dv, vv float64
	for i := range pos {
		di := pos[i] - c[i]
		dd += di * di
		dv += di * vel[i]
		vv += vel[i] * vel[i]
	}
	L := t1 - t0
	if vv == 0 { //modlint:allow floatcmp -- stationary piece: exact zero velocity has a constant distance
		return dd
	}
	dt := -dv / vv
	if dt < 0 {
		dt = 0
	} else if dt > L {
		dt = L
	}
	return dd + 2*dv*dt + vv*dt*dt
}

// trajReaches reports whether tr's motion during [from, hi] can come
// within the (inflated) squared radius r2 of center c. Only pieces
// overlapping the window matter; r2 = +Inf always reaches.
func trajReaches(tr trajectory.Trajectory, c geom.Vec, r2, from, hi float64) bool {
	if math.IsInf(r2, 1) {
		return true
	}
	thr := inflate(r2)
	for _, pc := range tr.Pieces() {
		t0 := math.Max(from, pc.Start)
		t1 := math.Min(hi, pc.End)
		if t1 < t0 {
			continue
		}
		if segMinDist2(pc.At(t0), pc.A, c, t0, t1) <= thr {
			return true
		}
	}
	return false
}

// oidsEqual compares two OID slices element-wise without allocating.
func oidsEqual(a, b []mod.OID) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
