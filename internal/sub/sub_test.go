package sub

import (
	"errors"
	"math"
	"testing"
	"time"

	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/trajectory"
)

// oracle evaluates the query fresh over the database's current state: a
// new engine seeded just past the last update, exactly what the
// registry's materialized answer must equal at every ack point.
func oracle(t *testing.T, db *mod.DB, q Query) []mod.OID {
	t.Helper()
	snap := db.Snapshot()
	lo := math.Nextafter(snap.Tau(), math.Inf(1))
	if q.Hi <= lo {
		return nil
	}
	e, err := query.NewEngine(query.EngineConfig{
		F: gdist.PointSq{Point: q.Point}, Lo: lo, Hi: q.Hi,
	})
	if err != nil {
		t.Fatalf("oracle engine: %v", err)
	}
	var out func() []mod.OID
	if q.Kind == KNN {
		knn := query.NewKNN(q.K)
		if err := e.AddEvaluator(knn); err != nil {
			t.Fatalf("oracle knn: %v", err)
		}
		out = knn.Current
	} else {
		w := query.NewWithin(q.Radius * q.Radius)
		if err := e.AddEvaluator(w); err != nil {
			t.Fatalf("oracle within: %v", err)
		}
		out = w.Current
	}
	if err := e.Seed(snap.Trajectories()); err != nil {
		t.Fatalf("oracle seed: %v", err)
	}
	return out()
}

// replay folds a delta stream onto the initial answer.
type replay struct {
	kind  Kind
	set   map[mod.OID]bool
	order []mod.OID
}

func newReplay(kind Kind, initial []mod.OID) *replay {
	r := &replay{kind: kind, set: make(map[mod.OID]bool)}
	for _, o := range initial {
		r.set[o] = true
	}
	r.order = append(r.order, initial...)
	return r
}

func (r *replay) apply(t *testing.T, d Delta) {
	t.Helper()
	if d.Resync {
		r.set = make(map[mod.OID]bool)
		for _, o := range d.Add {
			r.set[o] = true
		}
		r.order = append(r.order[:0], d.Add...)
		if r.kind == KNN {
			r.order = append(r.order[:0], d.Order...)
		}
		return
	}
	for _, o := range d.Remove {
		if !r.set[o] {
			t.Fatalf("delta removes %s which is not in the answer", o)
		}
		delete(r.set, o)
	}
	for _, o := range d.Add {
		if r.set[o] {
			t.Fatalf("delta adds %s twice", o)
		}
		r.set[o] = true
	}
	if r.kind == KNN {
		if d.Order == nil && (len(d.Add) > 0 || len(d.Remove) > 0) {
			t.Fatalf("k-NN membership delta without order: %+v", d)
		}
		if d.Order != nil {
			r.order = append(r.order[:0], d.Order...)
		}
	}
}

// current returns the replayed answer in oracle form (rank order for
// k-NN, ascending for within).
func (r *replay) current() []mod.OID {
	if r.kind == KNN {
		return r.order
	}
	out := make([]mod.OID, 0, len(r.set))
	for o := range r.set {
		out = append(out, o)
	}
	sortOIDsAsc(out)
	return out
}

func drain(st *Stream) []Delta {
	var ds []Delta
	for {
		d, ok := st.Pop()
		if !ok {
			return ds
		}
		ds = append(ds, d)
	}
}

func mustLoad(t *testing.T, db *mod.DB, o mod.OID, start float64, vel, pos []float64) {
	t.Helper()
	if err := db.Load(o, trajectory.Linear(start, vel, pos)); err != nil {
		t.Fatalf("load %d: %v", o, err)
	}
}

func mustApply(t *testing.T, db *mod.DB, u mod.Update) {
	t.Helper()
	if err := db.Apply(u); err != nil {
		t.Fatalf("apply %s: %v", u, err)
	}
}

func checkAnswer(t *testing.T, got, want []mod.OID, what string) {
	t.Helper()
	if !oidsEqual(got, want) {
		t.Fatalf("%s: got %v, want %v", what, got, want)
	}
}

func TestWithinDeltasMatchOracle(t *testing.T) {
	db := mod.NewDB(2, 0)
	mustLoad(t, db, 1, 0, []float64{0, 0}, []float64{1, 1})      // inside
	mustLoad(t, db, 2, 0, []float64{0, 0}, []float64{50, 0})     // far
	mustLoad(t, db, 3, 0, []float64{-1, 0}, []float64{30, 0})    // approaching
	mustLoad(t, db, 4, 0, []float64{0.5, 0.5}, []float64{2, -2}) // leaving

	reg := NewRegistry(db, Config{})
	defer reg.Close()

	q := Query{Kind: Within, Radius: 5, Point: geom.Vec{0, 0}, Hi: 200}
	st, err := reg.Subscribe(q)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	_, initial := st.Initial()
	checkAnswer(t, initial, oracle(t, db, st.Query()), "initial answer")

	rp := newReplay(Within, initial)
	updates := []mod.Update{
		mod.New(5, 1, []float64{0, 0}, []float64{3, 0}),   // appears inside
		mod.ChDir(2, 2, []float64{-2, 0}),                 // far object turns toward us
		mod.Terminate(1, 3),                               // inside object dies
		mod.New(6, 4, []float64{1, 0}, []float64{-40, 0}), // distant, inbound
		mod.ChDir(5, 6, []float64{10, 0}),                 // sprints away
		mod.Terminate(3, 40),
	}
	for _, u := range updates {
		mustApply(t, db, u)
		reg.Sync()
		for _, d := range drain(st) {
			if d.Done {
				t.Fatalf("unexpected Done before horizon: %+v", d)
			}
			rp.apply(t, d)
		}
		checkAnswer(t, rp.current(), oracle(t, db, st.Query()), u.String())
	}
}

func TestKNNDeltasWithPoolRefresh(t *testing.T) {
	db := mod.NewDB(1, 0)
	mustLoad(t, db, 1, 0, []float64{0}, []float64{1})  // nearest
	mustLoad(t, db, 2, 0, []float64{0}, []float64{10}) // outside initial pool
	mustLoad(t, db, 3, 0, []float64{0}, []float64{25})

	reg := NewRegistry(db, Config{})
	defer reg.Close()

	q := Query{Kind: KNN, K: 1, Point: geom.Vec{0}, Hi: 100}
	st, err := reg.Subscribe(q)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	_, initial := st.Initial()
	checkAnswer(t, initial, []mod.OID{1}, "initial k-NN")

	rp := newReplay(KNN, initial)
	updates := []mod.Update{
		// Object 1 flees: its distance curve crosses the pool sentinel
		// (initial pool radius 2), forcing a refresh, and then crosses
		// object 2 at x=10 around t=10, handing the answer over.
		mod.ChDir(1, 1, []float64{1}),
		mod.New(4, 5, []float64{0}, []float64{100}),
		mod.New(5, 12, []float64{0}, []float64{99}),
	}
	for _, u := range updates {
		mustApply(t, db, u)
		reg.Sync()
		for _, d := range drain(st) {
			rp.apply(t, d)
		}
		checkAnswer(t, rp.current(), oracle(t, db, st.Query()), u.String())
	}
	if got := rp.current(); !oidsEqual(got, []mod.OID{2}) {
		t.Fatalf("after handover want answer [2], got %v", got)
	}
}

// TestWakeTimestamps pins the wake-heap contract: kinetic events between
// updates surface as deltas stamped with the event instant, not the
// update instant that triggered processing.
func TestWakeTimestamps(t *testing.T) {
	db := mod.NewDB(1, 0)
	mustLoad(t, db, 1, 0, []float64{1}, []float64{-5}) // passes through [-2, 2] during t in [3, 7]
	mustLoad(t, db, 2, 0, []float64{0}, []float64{50}) // far bystander

	reg := NewRegistry(db, Config{})
	defer reg.Close()

	st, err := reg.Subscribe(Query{Kind: Within, Radius: 2, Point: geom.Vec{0}, Hi: 100})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	if _, initial := st.Initial(); len(initial) != 0 {
		t.Fatalf("initially empty answer expected, got %v", initial)
	}

	// Updates far from the query region: they must not generate answer
	// deltas themselves, only advance virtual time past the crossings.
	mustApply(t, db, mod.ChDir(2, 1, []float64{0.25}))
	reg.Sync()
	if ds := drain(st); len(ds) != 0 {
		t.Fatalf("far update produced deltas: %+v", ds)
	}
	mustApply(t, db, mod.ChDir(2, 10, []float64{0}))
	reg.Sync()
	ds := drain(st)
	if len(ds) != 2 {
		t.Fatalf("want enter+exit deltas, got %+v", ds)
	}
	if math.Abs(ds[0].T-3) > 1e-9 || len(ds[0].Add) != 1 || ds[0].Add[0] != 1 {
		t.Fatalf("enter delta wrong: %+v", ds[0])
	}
	if math.Abs(ds[1].T-7) > 1e-9 || len(ds[1].Remove) != 1 || ds[1].Remove[0] != 1 {
		t.Fatalf("exit delta wrong: %+v", ds[1])
	}
	if ds[1].Seq != ds[0].Seq+1 {
		t.Fatalf("non-consecutive seq: %d then %d", ds[0].Seq, ds[1].Seq)
	}
}

func TestSubscribeValidation(t *testing.T) {
	db := mod.NewDB(2, 0)
	reg := NewRegistry(db, Config{})
	defer reg.Close()

	cases := []Query{
		{Kind: KNN, K: 0, Point: geom.Vec{0, 0}},
		{Kind: Within, Radius: -1, Point: geom.Vec{0, 0}},
		{Kind: Within, Radius: math.NaN(), Point: geom.Vec{0, 0}},
		{Kind: Within, Radius: math.Inf(1), Point: geom.Vec{0, 0}},
		{Kind: KNN, K: 1, Point: geom.Vec{0}},                     // dim mismatch
		{Kind: KNN, K: 1, Point: geom.Vec{math.NaN(), 0}},         // NaN component
		{Kind: KNN, K: 1, Point: geom.Vec{math.Inf(1), 0}},        // Inf component
		{Kind: KNN, K: 1, Point: geom.Vec{0, 0}, Hi: math.NaN()},  // NaN horizon
		{Kind: KNN, K: 1, Point: geom.Vec{0, 0}, Hi: math.Inf(1)}, // Inf horizon
		{Kind: KNN, K: 1, Point: geom.Vec{0, 0}, Hi: -3},          // negative horizon
		{Kind: KNN, K: 1, Point: geom.Vec{0, 0}, Hi: 2e9},         // beyond max
		{Kind: 0, Point: geom.Vec{0, 0}},                          // unknown kind
	}
	for _, q := range cases {
		if _, err := reg.Subscribe(q); err == nil {
			t.Errorf("Subscribe(%+v) accepted a malformed query", q)
		}
	}

	// A window that already ended is refused with ErrHorizon.
	mustApply(t, db, mod.New(1, 9, []float64{0, 0}, []float64{0, 0}))
	if _, err := reg.Subscribe(Query{Kind: KNN, K: 1, Point: geom.Vec{0, 0}, Hi: 5}); !errors.Is(err, ErrHorizon) {
		t.Fatalf("past-window subscribe: got %v, want ErrHorizon", err)
	}
}

func TestHorizonDone(t *testing.T) {
	db := mod.NewDB(1, 0)
	mustLoad(t, db, 1, 0, []float64{0}, []float64{1})

	reg := NewRegistry(db, Config{})
	defer reg.Close()

	st, err := reg.Subscribe(Query{Kind: KNN, K: 1, Point: geom.Vec{0}, Hi: 5})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	mustApply(t, db, mod.New(2, 7, []float64{0}, []float64{3}))
	reg.Sync()
	select {
	case <-st.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("stream not done after horizon passed")
	}
	ds := drain(st)
	if len(ds) == 0 || !ds[len(ds)-1].Done {
		t.Fatalf("want terminal Done delta, got %+v", ds)
	}
	last := ds[len(ds)-1]
	if last.T != 5 || last.Err != "" {
		t.Fatalf("bad terminal delta: %+v", last)
	}
	if err := st.Err(); err != nil {
		t.Fatalf("normal completion must leave nil Err, got %v", err)
	}
	if subs, streams := reg.Counts(); subs != 0 || streams != 0 {
		t.Fatalf("finished subscription not torn down: %d subs, %d streams", subs, streams)
	}
}

func TestSharedSubscriptionAndCancel(t *testing.T) {
	db := mod.NewDB(1, 0)
	mustLoad(t, db, 1, 0, []float64{0}, []float64{1})

	reg := NewRegistry(db, Config{})
	defer reg.Close()

	q := Query{Kind: Within, Radius: 3, Point: geom.Vec{0}, Hi: 50}
	a, err := reg.Subscribe(q)
	if err != nil {
		t.Fatalf("subscribe a: %v", err)
	}
	b, err := reg.Subscribe(q)
	if err != nil {
		t.Fatalf("subscribe b: %v", err)
	}
	if subs, streams := reg.Counts(); subs != 1 || streams != 2 {
		t.Fatalf("identical queries must share: %d subs, %d streams", subs, streams)
	}

	a.Cancel()
	if !errors.Is(a.Err(), ErrCanceled) {
		t.Fatalf("canceled stream Err = %v", a.Err())
	}
	// No delta is delivered after Cancel returns, ever.
	mustApply(t, db, mod.New(2, 1, []float64{0}, []float64{0.5}))
	reg.Sync()
	if d, ok := a.Pop(); ok {
		t.Fatalf("delta after cancel: %+v", d)
	}
	// The surviving stream still gets it.
	if ds := drain(b); len(ds) != 1 || len(ds[0].Add) != 1 || ds[0].Add[0] != 2 {
		t.Fatalf("surviving stream missed the delta: %+v", ds)
	}

	b.Cancel()
	reg.Sync()
	if subs, streams := reg.Counts(); subs != 0 || streams != 0 {
		t.Fatalf("last cancel must tear down: %d subs, %d streams", subs, streams)
	}
}

func TestSlowConsumerCoalesceAndEvict(t *testing.T) {
	db := mod.NewDB(1, 0)
	mustLoad(t, db, 1, 0, []float64{0}, []float64{1})

	reg := NewRegistry(db, Config{QueueCap: 2, MaxCoalesce: 1000})
	defer reg.Close()

	q := Query{Kind: Within, Radius: 10, Point: geom.Vec{0}, Hi: 1000}
	st, err := reg.Subscribe(q)
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	// Flood with answer-changing updates without draining: the queue
	// must collapse to one resync carrying the full current answer.
	tau := 1.0
	next := mod.OID(10)
	for i := 0; i < 10; i++ {
		mustApply(t, db, mod.New(next, tau, []float64{0}, []float64{0.5}))
		next++
		tau++
	}
	reg.Sync()
	ds := drain(st)
	if len(ds) > 3 {
		t.Fatalf("queue cap 2 but %d deltas queued", len(ds))
	}
	sawResync := false
	_, initial := st.Initial()
	rp := newReplay(Within, initial)
	for _, d := range ds {
		sawResync = sawResync || d.Resync
		rp.apply(t, d)
	}
	if !sawResync {
		t.Fatalf("overflow produced no resync: %+v", ds)
	}
	checkAnswer(t, rp.current(), oracle(t, db, st.Query()), "replayed coalesced stream")

	// Now with a tiny coalesce budget the consumer is evicted.
	st2, err := reg.Subscribe(Query{Kind: Within, Radius: 10, Point: geom.Vec{0.5}, Hi: 1000})
	if err != nil {
		t.Fatalf("subscribe 2: %v", err)
	}
	_ = st2
	reg2 := NewRegistry(db, Config{QueueCap: 1, MaxCoalesce: 1})
	defer reg2.Close()
	ev, err := reg2.Subscribe(Query{Kind: Within, Radius: 10, Point: geom.Vec{0}, Hi: 1000})
	if err != nil {
		t.Fatalf("subscribe evictee: %v", err)
	}
	for i := 0; i < 10; i++ {
		mustApply(t, db, mod.New(next, tau, []float64{0}, []float64{0.25}))
		next++
		tau++
	}
	reg2.Sync()
	select {
	case <-ev.Done():
	case <-time.After(5 * time.Second):
		t.Fatal("slow consumer not evicted")
	}
	if !errors.Is(ev.Err(), ErrSlowConsumer) {
		t.Fatalf("evicted stream Err = %v", ev.Err())
	}
	if subs, _ := reg2.Counts(); subs != 0 {
		t.Fatalf("evicting the only stream must tear down the subscription")
	}
}

func TestRegistryClose(t *testing.T) {
	db := mod.NewDB(1, 0)
	reg := NewRegistry(db, Config{})
	st, err := reg.Subscribe(Query{Kind: KNN, K: 1, Point: geom.Vec{0}, Hi: 10})
	if err != nil {
		t.Fatalf("subscribe: %v", err)
	}
	reg.Close()
	reg.Close() // idempotent
	select {
	case <-st.Done():
	default:
		t.Fatal("stream not terminated by Close")
	}
	if !errors.Is(st.Err(), ErrClosed) {
		t.Fatalf("Err after Close = %v", st.Err())
	}
	if _, err := reg.Subscribe(Query{Kind: KNN, K: 1, Point: geom.Vec{0}, Hi: 10}); !errors.Is(err, ErrClosed) {
		t.Fatalf("Subscribe after Close = %v", err)
	}
	// Updates after Close are dropped without blocking.
	mustApply(t, db, mod.New(1, 1, []float64{0}, []float64{1}))
}
