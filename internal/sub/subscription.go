package sub

import (
	"math"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
)

// subscription is one materialized continuing query: a small plane-sweep
// engine over the query's candidate pool, the current answer, and the
// attached subscriber streams. All fields are owned by the registry's
// pump goroutine; streams are the only concurrency boundary.
type subscription struct {
	sid    uint64 // registry-assigned, stable for the subscription's life
	boxID  uint64 // current interest-tree registration (0 when global)
	key    string
	q      Query    // normalized
	center geom.Vec // == q.Point
	lastT  float64  // time of the last emitted delta (or the build time)

	eng    *query.Engine
	knn    *query.KNN
	within *query.Within

	// poolR2 is the squared candidate-ball radius: for k-NN a doubling
	// margin over the k-th neighbor distance (+Inf when the pool must be
	// the whole database), for within exactly Radius². sentinel is the
	// pool-radius constant curve's id in the sweep (k-NN, finite pools).
	poolR2   float64
	sentinel uint64

	tracked map[mod.OID]struct{} // objects inserted into eng
	cur     []mod.OID            // current answer (k-NN: rank order; within: ascending)
	scratch []mod.OID
	seq     uint64

	// Thrash guard: a second refresh at the same database time forces
	// the pool to +Inf instead of looping on a too-tight radius.
	lastRefreshTau float64
	refreshedHere  bool

	streams    []*Stream
	wakeGen    uint64 // invalidates parked wake-heap entries
	routeEpoch uint64 // dedup stamp during routing
	done       bool
}

// answer reconciles s.cur with the evaluator's current answer and
// returns (add, remove, order, changed). add/remove are ascending;
// order is the full new ranking for k-NN (nil for within, and nil when
// only membership semantics apply). The no-change path allocates
// nothing: the fresh answer lands in s.scratch and is compared in
// place.
func (s *subscription) answer() (add, remove, order []mod.OID, changed bool) {
	s.scratch = s.scratch[:0]
	if s.knn != nil {
		s.scratch = s.knn.AppendCurrent(s.scratch)
	} else {
		s.scratch = s.within.AppendCurrent(s.scratch)
	}
	if oidsEqual(s.cur, s.scratch) {
		return nil, nil, nil, false
	}
	oldSorted := append([]mod.OID(nil), s.cur...)
	newSorted := append([]mod.OID(nil), s.scratch...)
	if s.knn != nil {
		sortOIDsAsc(oldSorted)
		sortOIDsAsc(newSorted)
		order = append([]mod.OID(nil), s.scratch...)
	}
	// Merge walk over the ascending views.
	i, j := 0, 0
	for i < len(oldSorted) || j < len(newSorted) {
		switch {
		case i == len(oldSorted):
			add = append(add, newSorted[j])
			j++
		case j == len(newSorted):
			remove = append(remove, oldSorted[i])
			i++
		case oldSorted[i] == newSorted[j]:
			i++
			j++
		case oldSorted[i] < newSorted[j]:
			remove = append(remove, oldSorted[i])
			i++
		default:
			add = append(add, newSorted[j])
			j++
		}
	}
	s.cur, s.scratch = s.scratch, s.cur
	return add, remove, order, true
}

// poolInsufficient reports whether the sentinel outranks the k-th
// nearest object: fewer than k objects are inside the candidate ball,
// so the true answer may include objects outside the pool and it must
// be rebuilt. Ties with the k-th object count as insufficient
// (conservative).
func (s *subscription) poolInsufficient() bool {
	if s.knn == nil || math.IsInf(s.poolR2, 1) {
		return false
	}
	n := 0
	insufficient := false
	s.eng.Sweeper().Walk(func(id uint64) bool {
		if query.IsConstID(id) {
			if id == s.sentinel {
				insufficient = n < s.q.K
				return false
			}
			return true
		}
		n++
		return n < s.q.K
	})
	return insufficient
}

// sortOIDsAsc sorts ascending (insertion sort: answers are small).
func sortOIDsAsc(os []mod.OID) {
	for i := 1; i < len(os); i++ {
		for j := i; j > 0 && os[j] < os[j-1]; j-- {
			os[j], os[j-1] = os[j-1], os[j]
		}
	}
}
