// Package tindex implements an interval tree over object lifetimes: given
// the time span during which each object exists, it answers "which
// objects are alive at instant t" (stab) and "which objects' lifetimes
// overlap [lo, hi]" (overlap) in O(log n + k).
//
// This is the temporal access path the paper's related work points at
// (indexing moving objects, [1,17,22]): a past-query engine that replays
// many different windows over the same recorded history should not scan
// every object per query. query.NewHistorian uses this index to seed
// sweeps from only the relevant objects.
//
// The tree is an augmented static BST built over intervals sorted by
// start (balanced by midpoint splitting), each node carrying the maximum
// end time in its subtree.
package tindex

import (
	"errors"
	"math"
	"sort"
)

// Interval is a closed lifetime [Lo, Hi] for an opaque id; Hi may be
// +Inf for objects never terminated.
type Interval struct {
	Lo, Hi float64
	ID     uint64
}

// Tree is the immutable interval index. Build once, query many times.
type Tree struct {
	nodes []node
	root  int
	size  int
}

type node struct {
	iv          Interval
	maxEnd      float64
	left, right int // -1 when absent
}

// Build constructs the index. Intervals with Hi < Lo are rejected.
func Build(ivs []Interval) (*Tree, error) {
	for _, iv := range ivs {
		if iv.Hi < iv.Lo || math.IsNaN(iv.Lo) || math.IsNaN(iv.Hi) {
			return nil, errors.New("tindex: malformed interval")
		}
	}
	sorted := make([]Interval, len(ivs))
	copy(sorted, ivs)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].Lo != sorted[j].Lo { //modlint:allow floatcmp -- comparator: strict weak ordering needs exact compares
			return sorted[i].Lo < sorted[j].Lo
		}
		return sorted[i].ID < sorted[j].ID
	})
	t := &Tree{nodes: make([]node, 0, len(sorted)), size: len(sorted)}
	t.root = t.build(sorted)
	return t, nil
}

// build recursively packs the sorted slice into a balanced subtree,
// returning the node index (-1 for empty).
func (t *Tree) build(ivs []Interval) int {
	if len(ivs) == 0 {
		return -1
	}
	mid := len(ivs) / 2
	idx := len(t.nodes)
	t.nodes = append(t.nodes, node{iv: ivs[mid]})
	left := t.build(ivs[:mid])
	right := t.build(ivs[mid+1:])
	n := &t.nodes[idx]
	n.left, n.right = left, right
	n.maxEnd = n.iv.Hi
	if left >= 0 && t.nodes[left].maxEnd > n.maxEnd {
		n.maxEnd = t.nodes[left].maxEnd
	}
	if right >= 0 && t.nodes[right].maxEnd > n.maxEnd {
		n.maxEnd = t.nodes[right].maxEnd
	}
	return idx
}

// Len returns the number of indexed intervals.
func (t *Tree) Len() int { return t.size }

// Stab returns the ids of all intervals containing t, ascending by id.
func (t *Tree) Stab(q float64) []uint64 {
	return t.Overlap(q, q)
}

// Overlap returns the ids of all intervals intersecting [lo, hi],
// ascending by id.
func (t *Tree) Overlap(lo, hi float64) []uint64 {
	if hi < lo {
		return nil
	}
	var out []uint64
	var walk func(i int)
	walk = func(i int) {
		if i < 0 {
			return
		}
		n := &t.nodes[i]
		// Prune: nothing in this subtree ends at or after lo.
		if n.maxEnd < lo {
			return
		}
		walk(n.left)
		// Subtree intervals start at >= n.iv.Lo (BST on Lo): if this
		// node starts beyond hi, so does everything to the right.
		if n.iv.Lo > hi {
			return
		}
		if n.iv.Hi >= lo {
			out = append(out, n.iv.ID)
		}
		walk(n.right)
	}
	walk(t.root)
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}
