package tindex

import (
	"math"
	"math/rand"
	"testing"
)

func TestBuildAndStab(t *testing.T) {
	tree, err := Build([]Interval{
		{Lo: 0, Hi: 10, ID: 1},
		{Lo: 5, Hi: 15, ID: 2},
		{Lo: 12, Hi: math.Inf(1), ID: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if tree.Len() != 3 {
		t.Fatalf("Len = %d", tree.Len())
	}
	cases := []struct {
		q    float64
		want []uint64
	}{
		{-1, nil},
		{0, []uint64{1}},
		{7, []uint64{1, 2}},
		{11, []uint64{2}},
		{13, []uint64{2, 3}},
		{1e9, []uint64{3}},
	}
	for _, c := range cases {
		got := tree.Stab(c.q)
		if !equalIDs(got, c.want) {
			t.Errorf("Stab(%g) = %v, want %v", c.q, got, c.want)
		}
	}
}

func TestOverlap(t *testing.T) {
	tree, err := Build([]Interval{
		{Lo: 0, Hi: 2, ID: 1},
		{Lo: 4, Hi: 6, ID: 2},
		{Lo: 8, Hi: 10, ID: 3},
	})
	if err != nil {
		t.Fatal(err)
	}
	if got := tree.Overlap(3, 7); !equalIDs(got, []uint64{2}) {
		t.Errorf("Overlap(3,7) = %v", got)
	}
	if got := tree.Overlap(2, 8); !equalIDs(got, []uint64{1, 2, 3}) {
		t.Errorf("Overlap(2,8) = %v (closed-interval touching counts)", got)
	}
	if got := tree.Overlap(2.5, 3.5); len(got) != 0 {
		t.Errorf("Overlap gap = %v", got)
	}
	if got := tree.Overlap(7, 3); got != nil {
		t.Errorf("inverted window = %v", got)
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build([]Interval{{Lo: 5, Hi: 1, ID: 1}}); err == nil {
		t.Error("inverted interval accepted")
	}
	if _, err := Build([]Interval{{Lo: math.NaN(), Hi: 1, ID: 1}}); err == nil {
		t.Error("NaN interval accepted")
	}
	empty, err := Build(nil)
	if err != nil || empty.Len() != 0 {
		t.Error("empty build")
	}
	if got := empty.Stab(0); len(got) != 0 {
		t.Error("stab on empty tree")
	}
}

func TestRandomizedAgainstBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 1 + rng.Intn(200)
		ivs := make([]Interval, n)
		for i := range ivs {
			lo := rng.Float64() * 100
			length := rng.Float64() * 30
			hi := lo + length
			if rng.Intn(10) == 0 {
				hi = math.Inf(1)
			}
			ivs[i] = Interval{Lo: lo, Hi: hi, ID: uint64(i + 1)}
		}
		tree, err := Build(ivs)
		if err != nil {
			t.Fatal(err)
		}
		for probe := 0; probe < 30; probe++ {
			lo := rng.Float64() * 120
			hi := lo + rng.Float64()*20
			got := tree.Overlap(lo, hi)
			var want []uint64
			for _, iv := range ivs {
				if iv.Lo <= hi && iv.Hi >= lo {
					want = append(want, iv.ID)
				}
			}
			sortIDs(want)
			if !equalIDs(got, want) {
				t.Fatalf("trial %d Overlap(%g,%g): %v vs brute %v", trial, lo, hi, got, want)
			}
		}
	}
}

func equalIDs(a, b []uint64) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

func sortIDs(xs []uint64) {
	for i := 1; i < len(xs); i++ {
		for j := i; j > 0 && xs[j] < xs[j-1]; j-- {
			xs[j], xs[j-1] = xs[j-1], xs[j]
		}
	}
}

func BenchmarkOverlap(b *testing.B) {
	rng := rand.New(rand.NewSource(5))
	ivs := make([]Interval, 100000)
	for i := range ivs {
		lo := rng.Float64() * 10000
		ivs[i] = Interval{Lo: lo, Hi: lo + rng.Float64()*100, ID: uint64(i)}
	}
	tree, _ := Build(ivs)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lo := float64(i%10000) + 0.5
		_ = tree.Overlap(lo, lo+10)
	}
}
