// Package tm demonstrates the paper's Theorem 2: it is undecidable
// whether a given query is past with respect to a given MOD. The proof
// sketch reduces from the halting problem — a sequence of `new` updates
// encodes successive Turing-machine configurations (objects ordered by
// insertion time carry the tape), and the query asks whether the database
// encodes a halting computation.
//
// This package implements the two ingredients of that reduction so the
// construction can be exercised concretely: a deterministic single-tape
// Turing machine, and the encoder that turns a machine run into a
// chronological MOD update sequence together with the "halting trace"
// query over the resulting database. Deciding that query's class
// (past vs future) for all machines would decide halting; the tests run
// the reduction on machines that do and do not halt.
package tm

import (
	"errors"
	"fmt"

	"repro/internal/geom"
	"repro/internal/mod"
)

// Symbol is a tape symbol; 0 is the blank.
type Symbol int

// State is a machine state; state 0 is the start state.
type State int

// Move is a head movement.
type Move int

// Head movements.
const (
	Left  Move = -1
	Stay  Move = 0
	Right Move = 1
)

// Rule is one transition: in state St reading Sym, write Write, move
// Move, and enter Next.
type Rule struct {
	St    State
	Sym   Symbol
	Write Symbol
	Move  Move
	Next  State
}

// Machine is a deterministic single-tape Turing machine. The machine
// halts when no rule applies or when it enters Halt.
type Machine struct {
	Rules []Rule
	Halt  State
}

// key indexes the transition table.
type key struct {
	st  State
	sym Symbol
}

// Config is a machine configuration: state, tape, head position.
type Config struct {
	St   State
	Tape map[int]Symbol
	Head int
}

// clone deep-copies a configuration.
func (c Config) clone() Config {
	tape := make(map[int]Symbol, len(c.Tape))
	for k, v := range c.Tape {
		tape[k] = v
	}
	return Config{St: c.St, Tape: tape, Head: c.Head}
}

// Run executes the machine from the empty tape for at most maxSteps,
// returning the visited configurations (including the initial one) and
// whether the machine halted within the budget.
func (m Machine) Run(maxSteps int) (trace []Config, halted bool) {
	table := make(map[key]Rule, len(m.Rules))
	for _, r := range m.Rules {
		table[key{r.St, r.Sym}] = r
	}
	cur := Config{St: 0, Tape: map[int]Symbol{}, Head: 0}
	trace = append(trace, cur.clone())
	for step := 0; step < maxSteps; step++ {
		if cur.St == m.Halt {
			return trace, true
		}
		r, ok := table[key{cur.St, cur.Tape[cur.Head]}]
		if !ok {
			return trace, true // no applicable rule: halt
		}
		if r.Write == 0 {
			delete(cur.Tape, cur.Head)
		} else {
			cur.Tape[cur.Head] = r.Write
		}
		cur.Head += int(r.Move)
		cur.St = r.Next
		trace = append(trace, cur.clone())
	}
	return trace, false
}

// Encode converts a computation trace into the reduction's MOD update
// sequence: for each configuration, one `new` update per non-blank tape
// cell plus one for the head. The object's initial position encodes
// (step, cell, symbol) and the creation times are strictly increasing, so
// the insertion order reconstructs the configuration sequence — exactly
// the proof sketch's "objects sorted by their insertion times encode the
// configurations".
func Encode(trace []Config) []mod.Update {
	var out []mod.Update
	oid := mod.OID(1)
	tau := 0.0
	for step, cfg := range trace {
		// Head marker: symbol slot -1 carries the state.
		tau += 1
		out = append(out, mod.New(oid, tau, geom.Of(0, 0, 0),
			geom.Of(float64(step), float64(cfg.Head), -1-float64(cfg.St))))
		oid++
		for cell, sym := range cfg.Tape {
			if sym == 0 {
				continue
			}
			tau += 1
			out = append(out, mod.New(oid, tau, geom.Of(0, 0, 0),
				geom.Of(float64(step), float64(cell), float64(sym))))
			oid++
		}
	}
	return out
}

// Decode reconstructs the configuration trace from a database built by
// applying an Encode-d update sequence.
func Decode(db *mod.DB) ([]Config, error) {
	// Reconstruct insertion order from the update log.
	byStep := map[int]*Config{}
	maxStep := -1
	for _, u := range db.Log() {
		if u.Kind != mod.KindNew {
			return nil, fmt.Errorf("tm: unexpected update %v in encoding", u)
		}
		if len(u.B) != 3 {
			return nil, errors.New("tm: encoded objects must be 3-D")
		}
		step := int(u.B[0])
		cell := int(u.B[1])
		val := u.B[2]
		if step > maxStep {
			maxStep = step
		}
		c := byStep[step]
		if c == nil {
			c = &Config{Tape: map[int]Symbol{}}
			byStep[step] = c
		}
		if val < 0 {
			c.Head = cell
			c.St = State(-val - 1)
		} else {
			c.Tape[cell] = Symbol(val)
		}
	}
	trace := make([]Config, 0, maxStep+1)
	for s := 0; s <= maxStep; s++ {
		c := byStep[s]
		if c == nil {
			return nil, fmt.Errorf("tm: missing configuration for step %d", s)
		}
		trace = append(trace, *c)
	}
	return trace, nil
}

// IsHaltingTrace is the reduction's query: does the database encode a
// computation of m that reaches a halting configuration? (In the paper
// this is the FO query whose past-ness would decide halting.)
func IsHaltingTrace(db *mod.DB, m Machine) (bool, error) {
	trace, err := Decode(db)
	if err != nil {
		return false, err
	}
	if len(trace) == 0 {
		return false, nil
	}
	table := make(map[key]Rule, len(m.Rules))
	for _, r := range m.Rules {
		table[key{r.St, r.Sym}] = r
	}
	// Validate each step follows from the previous one by a rule.
	for i := 1; i < len(trace); i++ {
		prev, cur := trace[i-1], trace[i]
		r, ok := table[key{prev.St, prev.Tape[prev.Head]}]
		if !ok {
			return false, fmt.Errorf("tm: step %d has no applicable rule", i)
		}
		want := prev.clone()
		if r.Write == 0 {
			delete(want.Tape, want.Head)
		} else {
			want.Tape[want.Head] = r.Write
		}
		want.Head += int(r.Move)
		want.St = r.Next
		if !configsEqual(want, cur) {
			return false, fmt.Errorf("tm: step %d does not follow", i)
		}
	}
	last := trace[len(trace)-1]
	if last.St == m.Halt {
		return true, nil
	}
	_, applicable := table[key{last.St, last.Tape[last.Head]}]
	return !applicable, nil
}

func configsEqual(a, b Config) bool {
	if a.St != b.St || a.Head != b.Head || len(a.Tape) != len(b.Tape) {
		return false
	}
	for k, v := range a.Tape {
		if b.Tape[k] != v {
			return false
		}
	}
	return true
}
