package tm

import (
	"testing"

	"repro/internal/mod"
)

// halter writes two marks and stops: 0 --(blank/write 1, R)--> 1
// --(blank/write 1, R)--> 2 (halt).
func halter() Machine {
	return Machine{
		Rules: []Rule{
			{St: 0, Sym: 0, Write: 1, Move: Right, Next: 1},
			{St: 1, Sym: 0, Write: 1, Move: Right, Next: 2},
		},
		Halt: 2,
	}
}

// looper bounces between two states forever on the same cell.
func looper() Machine {
	return Machine{
		Rules: []Rule{
			{St: 0, Sym: 0, Write: 1, Move: Stay, Next: 1},
			{St: 1, Sym: 1, Write: 0, Move: Stay, Next: 0},
			{St: 0, Sym: 1, Write: 1, Move: Stay, Next: 0},
		},
		Halt: 99,
	}
}

func TestRunHalts(t *testing.T) {
	trace, halted := halter().Run(100)
	if !halted {
		t.Fatal("halter did not halt")
	}
	if len(trace) != 3 {
		t.Fatalf("trace length %d, want 3", len(trace))
	}
	last := trace[len(trace)-1]
	if last.St != 2 || last.Head != 2 {
		t.Errorf("final config %+v", last)
	}
	if last.Tape[0] != 1 || last.Tape[1] != 1 {
		t.Errorf("final tape %v", last.Tape)
	}
}

func TestRunLoops(t *testing.T) {
	_, halted := looper().Run(1000)
	if halted {
		t.Fatal("looper halted")
	}
}

func TestEncodeDecodeRoundTrip(t *testing.T) {
	trace, _ := halter().Run(100)
	updates := Encode(trace)
	db := mod.NewDB(3, 0)
	if err := db.ApplyAll(updates...); err != nil {
		t.Fatal(err)
	}
	back, err := Decode(db)
	if err != nil {
		t.Fatal(err)
	}
	if len(back) != len(trace) {
		t.Fatalf("decoded %d configs, want %d", len(back), len(trace))
	}
	for i := range trace {
		if !configsEqual(trace[i], back[i]) {
			t.Errorf("config %d differs: %+v vs %+v", i, trace[i], back[i])
		}
	}
}

// TestHaltingReduction exercises Theorem 2's construction: the query
// "does the database encode a halting computation" distinguishes the
// encodings of halting and non-halting runs. Deciding whether that query
// is `past` for every machine would decide the halting problem.
func TestHaltingReduction(t *testing.T) {
	// Halting machine: the full trace encodes a halting computation.
	trace, halted := halter().Run(100)
	if !halted {
		t.Fatal("setup")
	}
	db := mod.NewDB(3, 0)
	if err := db.ApplyAll(Encode(trace)...); err != nil {
		t.Fatal(err)
	}
	ok, err := IsHaltingTrace(db, halter())
	if err != nil || !ok {
		t.Errorf("halting trace rejected: %v %v", ok, err)
	}

	// Non-halting machine truncated at any finite step: never a halting
	// trace — the query's answer stays invalid under future updates
	// (it is a future query for every finite prefix).
	for _, steps := range []int{1, 5, 50} {
		ltrace, _ := looper().Run(steps)
		ldb := mod.NewDB(3, 0)
		if err := ldb.ApplyAll(Encode(ltrace)...); err != nil {
			t.Fatal(err)
		}
		ok, err := IsHaltingTrace(ldb, looper())
		if err != nil || ok {
			t.Errorf("loop prefix (%d steps) accepted as halting: %v %v", steps, ok, err)
		}
	}
}

func TestIsHaltingTraceRejectsForged(t *testing.T) {
	// A forged trace whose second configuration does not follow.
	trace, _ := halter().Run(100)
	forged := []Config{trace[0], trace[2]} // skip a step
	db := mod.NewDB(3, 0)
	if err := db.ApplyAll(Encode(forged)...); err != nil {
		t.Fatal(err)
	}
	if ok, err := IsHaltingTrace(db, halter()); err == nil && ok {
		t.Error("forged trace accepted")
	}
}

func TestDecodeErrors(t *testing.T) {
	db := mod.NewDB(3, 0)
	// Non-encoding update mix.
	if err := db.ApplyAll(Encode([]Config{{Tape: map[int]Symbol{}}})...); err != nil {
		t.Fatal(err)
	}
	if err := db.Apply(mod.Terminate(1, 100)); err != nil {
		t.Fatal(err)
	}
	if _, err := Decode(db); err == nil {
		t.Error("decode of non-encoding accepted")
	}
}
