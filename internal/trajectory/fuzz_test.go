package trajectory

import (
	"testing"
)

// FuzzParse hardens the constraint-syntax parser: arbitrary input must
// never panic, and anything that parses must re-render and re-parse to an
// equivalent trajectory.
func FuzzParse(f *testing.F) {
	seeds := []string{
		"x = (2, -1, 0)t + (-40, 23, 30) & 0 <= t <= 21",
		"x = (1, 0)t + (0, 0) & 0 <= t | x = (0, 1)t + (10, -10) & 10 <= t",
		"x = (14.5, 1, 0) & 47 <= t",
		"x = (1)t + (2) & t <= 5",
		"",
		"x = (1,2)t + (3,4)",
		"garbage ∧ ∨ ⩽",
		"x = (1e308,2)t + (3,4) & 0 <= t <= 1",
	}
	for _, s := range seeds {
		f.Add(s)
	}
	f.Fuzz(func(t *testing.T, input string) {
		tr, err := Parse(input)
		if err != nil {
			return
		}
		// Round trip: whatever parsed must render and re-parse.
		back, err := Parse(tr.String())
		if err != nil {
			t.Fatalf("re-parse of %q failed: %v", tr.String(), err)
		}
		if len(back.Pieces()) != len(tr.Pieces()) {
			t.Fatalf("round trip changed piece count: %d vs %d", len(back.Pieces()), len(tr.Pieces()))
		}
	})
}
