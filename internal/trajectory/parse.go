package trajectory

import (
	"fmt"
	"math"
	"strconv"
	"strings"

	"repro/internal/geom"
)

// Parse reads a trajectory in the paper's constraint syntax, as produced
// by String. Both the Unicode connectives (∧, ∨, ⩽) and ASCII forms
// (&, |, <=) are accepted:
//
//	x = (2, -1, 0)t + (-40, 23, 30) & 0 <= t <= 21
//	| x = (0, -1, -5)t + (2, 23, 135) & 21 <= t <= 22
//	| x = (0.5, 0, -1)t + (-9, 1, 47) & 22 <= t
//
// Pieces given in the global form x = At + B are re-anchored internally.
func Parse(s string) (Trajectory, error) {
	norm := strings.NewReplacer("∧", "&", "∨", "|", "⩽", "<=", "≤", "<=").Replace(s)
	parts := strings.Split(norm, "|")
	var pieces []Piece
	for i, part := range parts {
		pc, err := parsePiece(strings.TrimSpace(part))
		if err != nil {
			return Trajectory{}, fmt.Errorf("trajectory: piece %d: %w", i, err)
		}
		pieces = append(pieces, pc)
	}
	return FromPieces(pieces...)
}

// MustParse is Parse for statically-valid inputs (tests, examples).
func MustParse(s string) Trajectory {
	tr, err := Parse(s)
	if err != nil {
		panic(err)
	}
	return tr
}

func parsePiece(s string) (Piece, error) {
	amp := strings.Index(s, "&")
	if amp < 0 {
		return Piece{}, fmt.Errorf("missing time constraint in %q", s)
	}
	motion, timecon := strings.TrimSpace(s[:amp]), strings.TrimSpace(s[amp+1:])

	// Motion: "x = (a1,...,an)t + (b1,...,bn)".
	eq := strings.Index(motion, "=")
	if eq < 0 {
		return Piece{}, fmt.Errorf("missing '=' in motion %q", motion)
	}
	rhs := strings.TrimSpace(motion[eq+1:])
	tIdx := strings.Index(rhs, ")t")
	var a, b geom.Vec
	var err error
	if tIdx >= 0 {
		a, err = parseVec(rhs[:tIdx+1])
		if err != nil {
			return Piece{}, err
		}
		rest := strings.TrimSpace(rhs[tIdx+2:])
		rest = strings.TrimPrefix(rest, "+")
		b, err = parseVec(strings.TrimSpace(rest))
		if err != nil {
			return Piece{}, err
		}
	} else {
		// Stationary piece: "x = (b1,...,bn)".
		b, err = parseVec(rhs)
		if err != nil {
			return Piece{}, err
		}
		a = geom.New(len(b))
	}
	if len(a) != len(b) {
		return Piece{}, fmt.Errorf("dimension mismatch in %q", motion)
	}

	// Time constraint: "a <= t <= b" or "a <= t" or "t <= b".
	start, end, err := parseTimeInterval(timecon)
	if err != nil {
		return Piece{}, err
	}
	// Anchor at start: B_at_start = A*start + B_global.
	anchored := b.AddScaled(start, a)
	return Piece{Start: start, End: end, A: a, B: anchored}, nil
}

func parseVec(s string) (geom.Vec, error) {
	s = strings.TrimSpace(s)
	if !strings.HasPrefix(s, "(") || !strings.HasSuffix(s, ")") {
		return nil, fmt.Errorf("expected vector literal, got %q", s)
	}
	fields := strings.Split(s[1:len(s)-1], ",")
	v := make(geom.Vec, len(fields))
	for i, f := range fields {
		x, err := strconv.ParseFloat(strings.TrimSpace(f), 64)
		if err != nil {
			return nil, fmt.Errorf("bad vector component %q: %w", f, err)
		}
		v[i] = x
	}
	return v, nil
}

func parseTimeInterval(s string) (start, end float64, err error) {
	parts := strings.Split(s, "<=")
	for i := range parts {
		parts[i] = strings.TrimSpace(parts[i])
	}
	switch len(parts) {
	case 3: // a <= t <= b
		if parts[1] != "t" {
			return 0, 0, fmt.Errorf("expected t in middle of %q", s)
		}
		start, err = strconv.ParseFloat(parts[0], 64)
		if err != nil {
			return 0, 0, err
		}
		end, err = strconv.ParseFloat(parts[2], 64)
		return start, end, err
	case 2:
		switch {
		case parts[1] == "t": // a <= t
			start, err = strconv.ParseFloat(parts[0], 64)
			return start, math.Inf(1), err
		case parts[0] == "t": // t <= b
			end, err = strconv.ParseFloat(parts[1], 64)
			return math.Inf(-1), end, err
		}
	}
	return 0, 0, fmt.Errorf("cannot parse time constraint %q", s)
}
