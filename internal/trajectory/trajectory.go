// Package trajectory implements the paper's moving-object model
// (Section 2): a trajectory is a continuous piecewise-linear function from
// time to R^n, represented — as in the paper — by a disjunction of
// linear-constraint conjunctions, one per linear piece.
//
// Trajectories are immutable values: the update operations (truncation for
// terminate, appending a motion piece for chdir) return new trajectories,
// which is what lets the MOD hand out consistent snapshots while updates
// stream in.
package trajectory

import (
	"errors"
	"fmt"
	"math"
	"strings"

	"repro/internal/geom"
	"repro/internal/piecewise"
	"repro/internal/poly"
)

// Piece is one linear leg of motion: x(t) = A*(t-Start) + B for
// t in [Start, End]. Anchoring at Start (rather than the paper's global
// x = At + B form) keeps evaluation well-conditioned for large times; the
// constraint renderer converts back to the paper's form.
type Piece struct {
	Start, End float64
	A, B       geom.Vec // velocity and position-at-Start
}

// At evaluates the piece at time t (no domain check).
func (p Piece) At(t float64) geom.Vec { return p.B.AddScaled(t-p.Start, p.A) }

// GlobalOffset returns B' such that x(t) = A*t + B', the paper's
// representation of the piece.
func (p Piece) GlobalOffset() geom.Vec { return p.B.AddScaled(-p.Start, p.A) }

// Trajectory is a continuous piecewise-linear function from R to R^n.
// The zero value is an undefined trajectory.
type Trajectory struct {
	pieces []Piece
}

// Errors returned by trajectory constructors and update operations.
var (
	ErrUndefined   = errors.New("trajectory: undefined at requested time")
	ErrChronology  = errors.New("trajectory: update time not after current definition")
	ErrTerminated  = errors.New("trajectory: already terminated")
	ErrEmpty       = errors.New("trajectory: no pieces")
	ErrDiscontinue = errors.New("trajectory: pieces not continuous")
)

// Linear returns the trajectory x = A*(t-start) + B defined on
// [start, +inf), the result of a `new` update in the paper's model.
func Linear(start float64, a, b geom.Vec) Trajectory {
	if len(a) != len(b) {
		panic("trajectory: velocity/position dimension mismatch")
	}
	return Trajectory{pieces: []Piece{{Start: start, End: math.Inf(1), A: a.Clone(), B: b.Clone()}}}
}

// Stationary returns a trajectory that sits at point b from start onward.
// The paper admits stationary points as moving objects with constant
// trajectories.
func Stationary(start float64, b geom.Vec) Trajectory {
	return Linear(start, geom.New(len(b)), b)
}

// FromPieces validates continuity and builds a trajectory. Pieces must be
// contiguous in time and continuous in space (each piece starts where the
// previous one ends).
func FromPieces(pieces ...Piece) (Trajectory, error) {
	if len(pieces) == 0 {
		return Trajectory{}, ErrEmpty
	}
	dim := pieces[0].A.Dim()
	for i, pc := range pieces {
		if pc.A.Dim() != dim || pc.B.Dim() != dim {
			return Trajectory{}, fmt.Errorf("trajectory: piece %d dimension mismatch", i)
		}
		if !(pc.Start < pc.End) {
			return Trajectory{}, fmt.Errorf("trajectory: piece %d has empty interval [%g,%g]", i, pc.Start, pc.End)
		}
		if i > 0 {
			prev := pieces[i-1]
			if prev.End != pc.Start { //modlint:allow floatcmp -- breakpoints are propagated bit-identically; positions get the epsilon check below
				return Trajectory{}, fmt.Errorf("trajectory: time gap between pieces %d and %d", i-1, i)
			}
			if !prev.At(prev.End).ApproxEqual(pc.B, 1e-9) {
				return Trajectory{}, fmt.Errorf("%w: piece %d jumps from %v to %v at t=%g",
					ErrDiscontinue, i, prev.At(prev.End), pc.B, pc.Start)
			}
		}
	}
	cp := make([]Piece, len(pieces))
	copy(cp, pieces)
	return Trajectory{pieces: cp}, nil
}

// MustFromPieces is FromPieces for statically-valid inputs.
func MustFromPieces(pieces ...Piece) Trajectory {
	tr, err := FromPieces(pieces...)
	if err != nil {
		panic(err)
	}
	return tr
}

// IsDefined reports whether the trajectory has any pieces.
func (tr Trajectory) IsDefined() bool { return len(tr.pieces) > 0 }

// Dim returns the spatial dimension, or 0 for an undefined trajectory.
func (tr Trajectory) Dim() int {
	if len(tr.pieces) == 0 {
		return 0
	}
	return tr.pieces[0].A.Dim()
}

// Start returns the first time at which the trajectory is defined.
func (tr Trajectory) Start() float64 {
	if len(tr.pieces) == 0 {
		return math.NaN()
	}
	return tr.pieces[0].Start
}

// End returns the last time at which the trajectory is defined (may be
// +Inf for an unterminated object).
func (tr Trajectory) End() float64 {
	if len(tr.pieces) == 0 {
		return math.NaN()
	}
	return tr.pieces[len(tr.pieces)-1].End
}

// DefinedAt reports whether t lies within the trajectory's time domain.
func (tr Trajectory) DefinedAt(t float64) bool {
	return len(tr.pieces) > 0 && t >= tr.Start() && t <= tr.End()
}

// pieceIndexAt returns the piece index containing t, or -1. At a shared
// boundary the later piece is preferred (matching the sweep's "just
// after" semantics).
func (tr Trajectory) pieceIndexAt(t float64) int {
	n := len(tr.pieces)
	if n == 0 || t < tr.pieces[0].Start || t > tr.pieces[n-1].End {
		return -1
	}
	lo, hi := 0, n-1
	for lo < hi {
		mid := (lo + hi) / 2
		if tr.pieces[mid].End < t {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo+1 < n && t >= tr.pieces[lo].End {
		lo++
	}
	return lo
}

// At returns the location at time t. The error is ErrUndefined outside
// the time domain.
func (tr Trajectory) At(t float64) (geom.Vec, error) {
	i := tr.pieceIndexAt(t)
	if i < 0 {
		return nil, fmt.Errorf("%w: t=%g", ErrUndefined, t)
	}
	return tr.pieces[i].At(t), nil
}

// MustAt is At for callers that have already checked DefinedAt.
func (tr Trajectory) MustAt(t float64) geom.Vec {
	v, err := tr.At(t)
	if err != nil {
		panic(err)
	}
	return v
}

// VelocityAt returns the velocity vector at time t (the paper's `vel`
// function). At a turn instant the velocity of the piece beginning at t is
// returned (right derivative).
func (tr Trajectory) VelocityAt(t float64) (geom.Vec, error) {
	i := tr.pieceIndexAt(t)
	if i < 0 {
		return nil, fmt.Errorf("%w: t=%g", ErrUndefined, t)
	}
	return tr.pieces[i].A.Clone(), nil
}

// Turns returns the time instants at which the derivative is
// discontinuous (Definition 1's turns). Piece boundaries where the
// velocity does not change are not turns.
func (tr Trajectory) Turns() []float64 {
	var ts []float64
	for i := 1; i < len(tr.pieces); i++ {
		if !tr.pieces[i-1].A.Equal(tr.pieces[i].A) {
			ts = append(ts, tr.pieces[i].Start)
		}
	}
	return ts
}

// Breaks returns all interior piece boundaries (turns or not).
func (tr Trajectory) Breaks() []float64 {
	var ts []float64
	for i := 1; i < len(tr.pieces); i++ {
		ts = append(ts, tr.pieces[i].Start)
	}
	return ts
}

// Pieces returns a copy of the linear pieces.
func (tr Trajectory) Pieces() []Piece {
	out := make([]Piece, len(tr.pieces))
	copy(out, tr.pieces)
	return out
}

// LastPiece returns the final motion piece.
func (tr Trajectory) LastPiece() (Piece, error) {
	if len(tr.pieces) == 0 {
		return Piece{}, ErrEmpty
	}
	return tr.pieces[len(tr.pieces)-1], nil
}

// IsTerminated reports whether the trajectory's domain is bounded above.
func (tr Trajectory) IsTerminated() bool {
	return len(tr.pieces) > 0 && !math.IsInf(tr.End(), 1)
}

// ChDir returns the trajectory updated by the paper's chdir(o, tau, A):
// identical up to tau, then moving with velocity a from the position at
// tau. Requires the trajectory to be defined at tau and tau to lie before
// the current end (or at/after the last turn; any tau within the domain is
// legal per Definition 3).
func (tr Trajectory) ChDir(tau float64, a geom.Vec) (Trajectory, error) {
	if !tr.DefinedAt(tau) {
		return Trajectory{}, fmt.Errorf("%w: chdir at t=%g", ErrUndefined, tau)
	}
	if a.Dim() != tr.Dim() {
		return Trajectory{}, fmt.Errorf("trajectory: chdir dimension %d != %d", a.Dim(), tr.Dim())
	}
	pos := tr.MustAt(tau)
	var pieces []Piece
	for _, pc := range tr.pieces {
		if pc.End <= tau {
			pieces = append(pieces, pc)
			continue
		}
		if pc.Start < tau {
			pieces = append(pieces, Piece{Start: pc.Start, End: tau, A: pc.A, B: pc.B})
		}
		break
	}
	pieces = append(pieces, Piece{Start: tau, End: math.Inf(1), A: a.Clone(), B: pos})
	return Trajectory{pieces: pieces}, nil
}

// Terminate returns the trajectory truncated at tau (the paper's
// terminate(o, tau)): T(o) AND t <= tau.
func (tr Trajectory) Terminate(tau float64) (Trajectory, error) {
	if !tr.DefinedAt(tau) {
		return Trajectory{}, fmt.Errorf("%w: terminate at t=%g", ErrUndefined, tau)
	}
	if tau <= tr.Start() {
		return Trajectory{}, fmt.Errorf("trajectory: terminate at start t=%g leaves empty domain", tau)
	}
	var pieces []Piece
	for _, pc := range tr.pieces {
		if pc.End <= tau {
			pieces = append(pieces, pc)
			continue
		}
		if pc.Start < tau {
			pieces = append(pieces, Piece{Start: pc.Start, End: tau, A: pc.A, B: pc.B})
		}
		break
	}
	return Trajectory{pieces: pieces}, nil
}

// Coordinate returns coordinate i of the trajectory as a piecewise-linear
// function of time — the bridge from the spatial model into the
// piecewise-polynomial curve algebra.
func (tr Trajectory) Coordinate(i int) (piecewise.Func, error) {
	if len(tr.pieces) == 0 {
		return piecewise.Func{}, ErrEmpty
	}
	if i < 0 || i >= tr.Dim() {
		return piecewise.Func{}, fmt.Errorf("trajectory: coordinate %d out of range (dim %d)", i, tr.Dim())
	}
	pieces := make([]piecewise.Piece, len(tr.pieces))
	for k, pc := range tr.pieces {
		// x_i(t) = A_i*(t - Start) + B_i = A_i*t + (B_i - A_i*Start)
		b := pc.B[i]
		//modlint:allow floatcmp -- zero velocity is exact (geom.New zeros); 0*Start is NaN for stationary pieces anchored at -Inf
		if pc.A[i] != 0 {
			b -= pc.A[i] * pc.Start
		}
		pieces[k] = piecewise.Piece{
			Start: pc.Start,
			End:   pc.End,
			P:     poly.Linear(pc.A[i], b),
		}
	}
	return piecewise.New(pieces...)
}

// Equal reports exact structural equality.
func (tr Trajectory) Equal(o Trajectory) bool {
	if len(tr.pieces) != len(o.pieces) {
		return false
	}
	for i := range tr.pieces {
		a, b := tr.pieces[i], o.pieces[i]
		if a.Start != b.Start || a.End != b.End || !a.A.Equal(b.A) || !a.B.Equal(b.B) {
			return false
		}
	}
	return true
}

// String renders the trajectory in the paper's constraint syntax, e.g.
//
//	x = (2, -1, 0)t + (-40, 23, 30) ∧ 0 <= t <= 21
//	∨ x = (0, -1, -5)t + (2, 23, 135) ∧ 21 <= t <= 22
//	∨ x = (0.5, 0, -1)t + (-9, 1, 47) ∧ 22 <= t
func (tr Trajectory) String() string {
	if len(tr.pieces) == 0 {
		return "<undefined>"
	}
	var b strings.Builder
	for i, pc := range tr.pieces {
		if i > 0 {
			b.WriteString(" ∨ ")
		}
		fmt.Fprintf(&b, "x = %st + %s ∧ ", pc.A, pc.GlobalOffset())
		if math.IsInf(pc.End, 1) {
			fmt.Fprintf(&b, "%g <= t", pc.Start)
		} else {
			fmt.Fprintf(&b, "%g <= t <= %g", pc.Start, pc.End)
		}
	}
	return b.String()
}
