package trajectory

import (
	"math"
	"strings"
	"testing"

	"repro/internal/geom"
)

// example1 builds the airplane trajectory of the paper's Example 1:
//
//	x = (2, -1, 0)t + (-40, 23, 30)   for 0 <= t <= 21
//	x = (0, -1, -5)t + (2, 23, 135)   for 21 <= t <= 22
//	x = (0.5, 0, -1)t + (-9, 1, 47)   for 22 <= t
func example1(t *testing.T) Trajectory {
	t.Helper()
	mk := func(start, end float64, a, b geom.Vec) Piece {
		return Piece{Start: start, End: end, A: a, B: b.AddScaled(start, a)}
	}
	tr, err := FromPieces(
		mk(0, 21, geom.Of(2, -1, 0), geom.Of(-40, 23, 30)),
		mk(21, 22, geom.Of(0, -1, -5), geom.Of(2, 23, 135)),
		mk(22, math.Inf(1), geom.Of(0.5, 0, -1), geom.Of(-9, 1, 47)),
	)
	if err != nil {
		t.Fatalf("example1: %v", err)
	}
	return tr
}

func TestExample1Trajectory(t *testing.T) {
	tr := example1(t)
	// Paper: turned at time 21 at position (2, 2, 30); second turn at 22
	// at position (2, 1, 25).
	p21, err := tr.At(21)
	if err != nil {
		t.Fatal(err)
	}
	if !p21.ApproxEqual(geom.Of(2, 2, 30), 1e-9) {
		t.Errorf("position at 21 = %v, want (2, 2, 30)", p21)
	}
	p22 := tr.MustAt(22)
	if !p22.ApproxEqual(geom.Of(2, 1, 25), 1e-9) {
		t.Errorf("position at 22 = %v, want (2, 1, 25)", p22)
	}
	turns := tr.Turns()
	if len(turns) != 2 || turns[0] != 21 || turns[1] != 22 {
		t.Errorf("Turns = %v, want [21 22]", turns)
	}
	if tr.IsTerminated() {
		t.Error("open-ended trajectory reported terminated")
	}
	if tr.Dim() != 3 {
		t.Errorf("Dim = %d", tr.Dim())
	}
}

func TestExample2Landing(t *testing.T) {
	// Example 2: chdir(o, 47, (0,0,0)) lands the airplane at
	// (14.5, 1, 0) and it stays there.
	tr := example1(t)
	landed, err := tr.ChDir(47, geom.Of(0, 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	p47 := landed.MustAt(47)
	if !p47.ApproxEqual(geom.Of(14.5, 1, 0), 1e-9) {
		t.Errorf("position at 47 = %v, want (14.5, 1, 0)", p47)
	}
	p100 := landed.MustAt(100)
	if !p100.ApproxEqual(geom.Of(14.5, 1, 0), 1e-9) {
		t.Errorf("position at 100 = %v, want parked at (14.5, 1, 0)", p100)
	}
	if n := len(landed.Pieces()); n != 4 {
		t.Errorf("pieces = %d, want 4", n)
	}
	// Original trajectory is unchanged (immutability).
	if tr.MustAt(100).ApproxEqual(p100, 1e-9) {
		t.Error("ChDir mutated the receiver")
	}
}

func TestLinearAndStationary(t *testing.T) {
	tr := Linear(5, geom.Of(1, 0), geom.Of(10, 10))
	if got := tr.MustAt(7); !got.ApproxEqual(geom.Of(12, 10), 1e-12) {
		t.Errorf("At(7) = %v", got)
	}
	if tr.DefinedAt(4.9) {
		t.Error("defined before start")
	}
	st := Stationary(0, geom.Of(3, 4))
	if got := st.MustAt(1000); !got.ApproxEqual(geom.Of(3, 4), 1e-12) {
		t.Errorf("stationary moved: %v", got)
	}
	if len(st.Turns()) != 0 {
		t.Error("stationary has turns")
	}
}

func TestAtOutsideDomain(t *testing.T) {
	tr := Linear(0, geom.Of(1), geom.Of(0))
	term, err := tr.Terminate(10)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := term.At(11); err == nil {
		t.Error("At after termination should fail")
	}
	if _, err := term.At(-1); err == nil {
		t.Error("At before start should fail")
	}
	if !term.IsTerminated() || term.End() != 10 {
		t.Errorf("End = %g", term.End())
	}
}

func TestTerminateMidPiece(t *testing.T) {
	tr := example1(t)
	term, err := tr.Terminate(21.5)
	if err != nil {
		t.Fatal(err)
	}
	if n := len(term.Pieces()); n != 2 {
		t.Errorf("pieces = %d, want 2", n)
	}
	want := tr.MustAt(21.5)
	if got := term.MustAt(21.5); !got.ApproxEqual(want, 1e-9) {
		t.Errorf("terminate changed positions: %v vs %v", got, want)
	}
	if _, err := term.Terminate(0); err == nil {
		t.Error("terminate before start should fail")
	}
}

func TestChDirErrors(t *testing.T) {
	tr := Linear(10, geom.Of(1), geom.Of(0))
	if _, err := tr.ChDir(5, geom.Of(1)); err == nil {
		t.Error("chdir before start should fail")
	}
	if _, err := tr.ChDir(15, geom.Of(1, 2)); err == nil {
		t.Error("chdir with wrong dimension should fail")
	}
	term, _ := tr.Terminate(20)
	if _, err := term.ChDir(25, geom.Of(1)); err == nil {
		t.Error("chdir after termination should fail")
	}
}

func TestVelocityAt(t *testing.T) {
	tr := example1(t)
	v, err := tr.VelocityAt(10)
	if err != nil {
		t.Fatal(err)
	}
	if !v.Equal(geom.Of(2, -1, 0)) {
		t.Errorf("vel(10) = %v", v)
	}
	// At the turn instant the right derivative governs.
	v, _ = tr.VelocityAt(21)
	if !v.Equal(geom.Of(0, -1, -5)) {
		t.Errorf("vel(21) = %v", v)
	}
}

func TestFromPiecesRejectsDiscontinuity(t *testing.T) {
	_, err := FromPieces(
		Piece{Start: 0, End: 1, A: geom.Of(1), B: geom.Of(0)},
		Piece{Start: 1, End: 2, A: geom.Of(1), B: geom.Of(99)}, // jump
	)
	if err == nil {
		t.Error("discontinuous pieces accepted")
	}
	_, err = FromPieces(
		Piece{Start: 0, End: 1, A: geom.Of(1), B: geom.Of(0)},
		Piece{Start: 5, End: 6, A: geom.Of(1), B: geom.Of(1)}, // gap
	)
	if err == nil {
		t.Error("time gap accepted")
	}
}

func TestCoordinate(t *testing.T) {
	tr := example1(t)
	x0, err := tr.Coordinate(0)
	if err != nil {
		t.Fatal(err)
	}
	for _, tt := range []float64{0, 10, 21, 21.5, 22, 40} {
		want := tr.MustAt(tt)[0]
		if got := x0.Eval(tt); math.Abs(got-want) > 1e-9 {
			t.Errorf("x0(%g) = %g, want %g", tt, got, want)
		}
	}
	if _, err := tr.Coordinate(5); err == nil {
		t.Error("out-of-range coordinate accepted")
	}
}

func TestStringRoundTrip(t *testing.T) {
	tr := example1(t)
	s := tr.String()
	if !strings.Contains(s, "x = (2, -1, 0)t + (-40, 23, 30)") {
		t.Errorf("String missing paper form: %s", s)
	}
	back, err := Parse(s)
	if err != nil {
		t.Fatalf("Parse(String): %v", err)
	}
	for _, tt := range []float64{0, 10.5, 21, 22, 47} {
		a, b := tr.MustAt(tt), back.MustAt(tt)
		if !a.ApproxEqual(b, 1e-9) {
			t.Errorf("round trip differs at t=%g: %v vs %v", tt, a, b)
		}
	}
}

func TestParsePaperSyntax(t *testing.T) {
	tr, err := Parse(`x = (2, -1, 0)t + (-40, 23, 30) & 0 <= t <= 21
		| x = (0, -1, -5)t + (2, 23, 135) & 21 <= t <= 22
		| x = (0.5, 0, -1)t + (-9, 1, 47) & 22 <= t`)
	if err != nil {
		t.Fatal(err)
	}
	if !tr.MustAt(21).ApproxEqual(geom.Of(2, 2, 30), 1e-9) {
		t.Errorf("parsed At(21) = %v", tr.MustAt(21))
	}
	// Stationary piece syntax (Example 2's landed plane).
	st, err := Parse(`x = (14.5, 1, 0) & 47 <= t`)
	if err != nil {
		t.Fatal(err)
	}
	if !st.MustAt(60).ApproxEqual(geom.Of(14.5, 1, 0), 1e-9) {
		t.Errorf("stationary parse At(60) = %v", st.MustAt(60))
	}
}

func TestParseErrors(t *testing.T) {
	bad := []string{
		"",
		"x = (1,2)t + (3,4)",               // no time constraint
		"(1,2)t + (3,4) & 0 <= t",          // no '='
		"x = (1,2)t + (3) & 0 <= t",        // dim mismatch
		"x = (1,a)t + (3,4) & 0 <= t",      // bad number
		"x = (1,2)t + (3,4) & 0 <= s <= 1", // bad variable
	}
	for _, s := range bad {
		if _, err := Parse(s); err == nil {
			t.Errorf("Parse(%q) should fail", s)
		}
	}
}

func TestEqual(t *testing.T) {
	a := example1(t)
	b := example1(t)
	if !a.Equal(b) {
		t.Error("identical trajectories not Equal")
	}
	c, _ := a.ChDir(30, geom.Of(0, 0, 0))
	if a.Equal(c) {
		t.Error("different trajectories Equal")
	}
	if (Trajectory{}).IsDefined() {
		t.Error("zero value should be undefined")
	}
	if (Trajectory{}).String() != "<undefined>" {
		t.Error("zero value String")
	}
}

func TestBreaksVsTurns(t *testing.T) {
	// A piece boundary with equal velocities is a break but not a turn.
	tr := MustFromPieces(
		Piece{Start: 0, End: 1, A: geom.Of(1), B: geom.Of(0)},
		Piece{Start: 1, End: 2, A: geom.Of(1), B: geom.Of(1)},
		Piece{Start: 2, End: 3, A: geom.Of(2), B: geom.Of(2)},
	)
	if got := tr.Breaks(); len(got) != 2 {
		t.Errorf("Breaks = %v", got)
	}
	if got := tr.Turns(); len(got) != 1 || got[0] != 2 {
		t.Errorf("Turns = %v, want [2]", got)
	}
}
