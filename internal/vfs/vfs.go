// Package vfs is the narrow filesystem seam the durability layer writes
// through: just the nine operations the checkpoint/recovery protocol
// needs, implemented by the real OS (OS) and wrapped by the
// deterministic fault injector (internal/errfs). Keeping the interface
// minimal is what makes exhaustive fault injection tractable — every
// mutating operation the protocol performs is one countable call here,
// so a test can crash the protocol at literally every step.
package vfs

import (
	"io"
	"os"
	"path/filepath"
	"sort"
)

// File is a writable file handle that can force its contents to stable
// storage. It satisfies mod.SyncWriter, so a journal wired to a File
// fsyncs on Sync/Close.
type File interface {
	io.Writer
	Sync() error
	Close() error
}

// FS is the filesystem surface of the durability protocol. All paths
// are plain strings; implementations interpret them like package os.
type FS interface {
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string) error
	// ReadDir lists the names (not paths) of dir's entries, sorted.
	ReadDir(dir string) ([]string, error)
	// Open opens name for reading.
	Open(name string) (io.ReadCloser, error)
	// Create opens name for writing, truncating it if it exists.
	Create(name string) (File, error)
	// Append opens name for appending, creating it if needed.
	Append(name string) (File, error)
	// Rename atomically replaces newname with oldname.
	Rename(oldname, newname string) error
	// Remove deletes name.
	Remove(name string) error
	// Truncate cuts name to size bytes.
	Truncate(name string, size int64) error
	// SyncDir fsyncs the directory itself, making entry creations,
	// renames and removals durable.
	SyncDir(dir string) error
}

// OS is the real filesystem.
type OS struct{}

// MkdirAll implements FS.
func (OS) MkdirAll(dir string) error { return os.MkdirAll(dir, 0o755) }

// ReadDir implements FS.
func (OS) ReadDir(dir string) ([]string, error) {
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	sort.Strings(names)
	return names, nil
}

// Open implements FS.
func (OS) Open(name string) (io.ReadCloser, error) { return os.Open(name) }

// Create implements FS.
func (OS) Create(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_TRUNC|os.O_WRONLY, 0o644)
}

// Append implements FS.
func (OS) Append(name string) (File, error) {
	return os.OpenFile(name, os.O_CREATE|os.O_APPEND|os.O_WRONLY, 0o644)
}

// Rename implements FS.
func (OS) Rename(oldname, newname string) error { return os.Rename(oldname, newname) }

// Remove implements FS.
func (OS) Remove(name string) error { return os.Remove(name) }

// Truncate implements FS.
func (OS) Truncate(name string, size int64) error { return os.Truncate(name, size) }

// SyncDir implements FS.
func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	serr := d.Sync()
	cerr := d.Close()
	if serr != nil {
		return serr
	}
	return cerr
}

// WriteFileAtomic writes data to path via the tmp + fsync + rename +
// dir-fsync dance: after it returns nil the file durably holds exactly
// data, and a crash at any interior point leaves either the old file or
// no file — never a partial one. The temp file lives in path's
// directory so the rename stays within one filesystem.
func WriteFileAtomic(fsys FS, path string, data []byte) error {
	tmp := path + ".tmp"
	f, err := fsys.Create(tmp)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Sync(); err != nil {
		_ = f.Close()
		_ = fsys.Remove(tmp)
		return err
	}
	if err := f.Close(); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		_ = fsys.Remove(tmp)
		return err
	}
	return fsys.SyncDir(filepath.Dir(path))
}

// ReadFile slurps name through fsys.
func ReadFile(fsys FS, name string) ([]byte, error) {
	r, err := fsys.Open(name)
	if err != nil {
		return nil, err
	}
	data, rerr := io.ReadAll(r)
	cerr := r.Close()
	if rerr != nil {
		return nil, rerr
	}
	return data, cerr
}
