package vfs_test

import (
	"errors"
	"os"
	"path/filepath"
	"testing"

	"repro/internal/errfs"
	"repro/internal/vfs"
)

func TestOSRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS{}
	sub := filepath.Join(dir, "a", "b")
	if err := fsys.MkdirAll(sub); err != nil {
		t.Fatal(err)
	}
	p := filepath.Join(sub, "x.txt")
	f, err := fsys.Create(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatal(err)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	af, err := fsys.Append(p)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := af.Write([]byte("world")); err != nil {
		t.Fatal(err)
	}
	if err := af.Close(); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fsys, p)
	if err != nil || string(got) != "hello world" {
		t.Fatalf("read back %q, %v", got, err)
	}
	if err := fsys.Truncate(p, 5); err != nil {
		t.Fatal(err)
	}
	got, _ = vfs.ReadFile(fsys, p)
	if string(got) != "hello" {
		t.Fatalf("after truncate: %q", got)
	}
	names, err := fsys.ReadDir(sub)
	if err != nil || len(names) != 1 || names[0] != "x.txt" {
		t.Fatalf("ReadDir = %v, %v", names, err)
	}
	if err := fsys.SyncDir(sub); err != nil {
		t.Fatal(err)
	}
	if err := fsys.Remove(p); err != nil {
		t.Fatal(err)
	}
	if _, err := fsys.Open(p); !errors.Is(err, os.ErrNotExist) {
		t.Fatalf("open after remove: %v", err)
	}
}

func TestWriteFileAtomic(t *testing.T) {
	dir := t.TempDir()
	fsys := vfs.OS{}
	p := filepath.Join(dir, "m.json")
	if err := vfs.WriteFileAtomic(fsys, p, []byte("one")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFileAtomic(fsys, p, []byte("two")); err != nil {
		t.Fatal(err)
	}
	got, err := vfs.ReadFile(fsys, p)
	if err != nil || string(got) != "two" {
		t.Fatalf("read back %q, %v", got, err)
	}
	names, _ := fsys.ReadDir(dir)
	if len(names) != 1 {
		t.Fatalf("temp file left behind: %v", names)
	}
}

// TestWriteFileAtomicCrashLeavesOldContent sweeps a fault across every
// operation of an atomic overwrite and asserts the destination always
// holds the old or the new content in full.
func TestWriteFileAtomicCrashLeavesOldContent(t *testing.T) {
	// Measure the operation count of one clean overwrite.
	probeDir := t.TempDir()
	probe := errfs.New(vfs.OS{}, 0, errfs.FailOp)
	p := filepath.Join(probeDir, "m.json")
	if err := vfs.WriteFileAtomic(vfs.OS{}, p, []byte("old")); err != nil {
		t.Fatal(err)
	}
	if err := vfs.WriteFileAtomic(probe, p, []byte("fresh")); err != nil {
		t.Fatal(err)
	}
	total := probe.Ops()
	if total < 4 {
		t.Fatalf("expected >= 4 ops (create, write, sync, rename), got %d", total)
	}
	for _, mode := range []errfs.Mode{errfs.FailOp, errfs.ShortWrite, errfs.FailSync} {
		for k := 1; k <= total; k++ {
			dir := t.TempDir()
			path := filepath.Join(dir, "m.json")
			if err := vfs.WriteFileAtomic(vfs.OS{}, path, []byte("old")); err != nil {
				t.Fatal(err)
			}
			inj := errfs.New(vfs.OS{}, k, mode)
			err := vfs.WriteFileAtomic(inj, path, []byte("fresh"))
			got, rerr := vfs.ReadFile(vfs.OS{}, path)
			if rerr != nil {
				t.Fatalf("mode=%v k=%d: destination unreadable: %v", mode, k, rerr)
			}
			if err == nil {
				// The injected op was not on this protocol's path only if
				// injection never fired; with k <= total it must have.
				t.Fatalf("mode=%v k=%d: overwrite succeeded despite injection", mode, k)
			}
			if s := string(got); s != "old" && s != "fresh" {
				t.Fatalf("mode=%v k=%d: destination holds %q — a partial write\ntrace:\n%v",
					mode, k, s, inj.Trace())
			}
		}
	}
}
