// Package vis renders g-distance curves and answer timelines as ASCII
// charts for the terminal tools and examples — the closest a text UI gets
// to the paper's Figures 2 and 3. Rendering is deterministic (golden
// tests compare full frames).
package vis

import (
	"fmt"
	"math"
	"strings"

	"repro/internal/piecewise"
)

// Chart renders curves over a time window onto a character grid.
type Chart struct {
	Width, Height int
	// Lo, Hi delimit the time axis.
	Lo, Hi float64
	// YLo, YHi delimit the value axis; equal values mean autoscale.
	YLo, YHi float64

	curves []chartCurve
	marks  []mark
}

type chartCurve struct {
	label rune
	f     piecewise.Func
}

type mark struct {
	t     float64
	label string
}

// NewChart builds an empty chart with sane defaults.
func NewChart(width, height int, lo, hi float64) *Chart {
	if width < 16 {
		width = 16
	}
	if height < 4 {
		height = 4
	}
	return &Chart{Width: width, Height: height, Lo: lo, Hi: hi}
}

// AddCurve registers a curve drawn with the given glyph.
func (c *Chart) AddCurve(label rune, f piecewise.Func) {
	c.curves = append(c.curves, chartCurve{label: label, f: f})
}

// MarkTime draws a vertical marker (e.g. an event or update instant).
func (c *Chart) MarkTime(t float64, label string) {
	c.marks = append(c.marks, mark{t: t, label: label})
}

// Render draws the chart.
func (c *Chart) Render() string {
	ylo, yhi := c.YLo, c.YHi
	if ylo == yhi { //modlint:allow floatcmp -- unset-config sentinel: equal bounds (default 0,0) mean autoscale
		ylo, yhi = c.autoscale()
	}
	if yhi <= ylo {
		yhi = ylo + 1
	}
	grid := make([][]rune, c.Height)
	for r := range grid {
		grid[r] = []rune(strings.Repeat(" ", c.Width))
	}
	// Vertical markers first so curves draw over them.
	for _, m := range c.marks {
		col := c.col(m.t)
		if col < 0 || col >= c.Width {
			continue
		}
		for r := 0; r < c.Height; r++ {
			grid[r][col] = '|'
		}
	}
	// Curves: sample per column.
	for _, cv := range c.curves {
		lo, hi := cv.f.Domain()
		for col := 0; col < c.Width; col++ {
			t := c.Lo + (c.Hi-c.Lo)*float64(col)/float64(c.Width-1)
			if t < lo-1e-12 || t > hi+1e-12 {
				continue
			}
			v := cv.f.Eval(t)
			row := c.row(v, ylo, yhi)
			if row < 0 || row >= c.Height {
				continue
			}
			grid[row][col] = cv.label
		}
	}
	var b strings.Builder
	for r, line := range grid {
		val := yhi - (yhi-ylo)*float64(r)/float64(c.Height-1)
		fmt.Fprintf(&b, "%9.4g %s\n", val, string(line))
	}
	// Time axis.
	fmt.Fprintf(&b, "%9s %s\n", "", strings.Repeat("-", c.Width))
	axis := make([]rune, c.Width)
	for i := range axis {
		axis[i] = ' '
	}
	left := fmt.Sprintf("%g", c.Lo)
	right := fmt.Sprintf("%g", c.Hi)
	copy(axis, []rune(left))
	if len(right) <= c.Width {
		copy(axis[c.Width-len(right):], []rune(right))
	}
	fmt.Fprintf(&b, "%9s %s\n", "t:", string(axis))
	for _, m := range c.marks {
		if m.label != "" {
			fmt.Fprintf(&b, "%9s %s at t=%g\n", "|", m.label, m.t)
		}
	}
	return b.String()
}

func (c *Chart) col(t float64) int {
	return int(math.Round((t - c.Lo) / (c.Hi - c.Lo) * float64(c.Width-1)))
}

func (c *Chart) row(v, ylo, yhi float64) int {
	return int(math.Round((yhi - v) / (yhi - ylo) * float64(c.Height-1)))
}

// autoscale finds the value range across all curves within the window.
func (c *Chart) autoscale() (float64, float64) {
	ylo, yhi := math.Inf(1), math.Inf(-1)
	for _, cv := range c.curves {
		lo, hi := cv.f.Domain()
		lo = math.Max(lo, c.Lo)
		hi = math.Min(hi, c.Hi)
		if !(lo <= hi) {
			continue
		}
		for i := 0; i <= 4*c.Width; i++ {
			t := lo + (hi-lo)*float64(i)/float64(4*c.Width)
			v := cv.f.Eval(t)
			ylo = math.Min(ylo, v)
			yhi = math.Max(yhi, v)
		}
	}
	if math.IsInf(ylo, 1) {
		return 0, 1
	}
	pad := (yhi - ylo) * 0.05
	return ylo - pad, yhi + pad
}

// Timeline renders per-label membership intervals as horizontal bars —
// the answer-set view ("who was in the answer, when").
func Timeline(width int, lo, hi float64, rows []TimelineRow) string {
	if width < 16 {
		width = 16
	}
	var b strings.Builder
	for _, row := range rows {
		line := []rune(strings.Repeat("·", width))
		for _, iv := range row.Spans {
			c0 := int(math.Round((math.Max(iv[0], lo) - lo) / (hi - lo) * float64(width-1)))
			c1 := int(math.Round((math.Min(iv[1], hi) - lo) / (hi - lo) * float64(width-1)))
			for c := c0; c <= c1 && c < width; c++ {
				if c >= 0 {
					line[c] = '█'
				}
			}
		}
		fmt.Fprintf(&b, "%8s %s\n", row.Label, string(line))
	}
	fmt.Fprintf(&b, "%8s %s\n", "", strings.Repeat("-", width))
	axis := []rune(strings.Repeat(" ", width))
	left := fmt.Sprintf("%g", lo)
	right := fmt.Sprintf("%g", hi)
	copy(axis, []rune(left))
	if len(right) <= width {
		copy(axis[width-len(right):], []rune(right))
	}
	fmt.Fprintf(&b, "%8s %s\n", "t:", string(axis))
	return b.String()
}

// TimelineRow is one labelled bar of a Timeline.
type TimelineRow struct {
	Label string
	// Spans are [start, end] pairs.
	Spans [][2]float64
}
