package vis

import (
	"strings"
	"testing"

	"repro/internal/piecewise"
	"repro/internal/poly"
)

func TestChartRendersCurvesAndMarks(t *testing.T) {
	c := NewChart(40, 10, 0, 40)
	c.AddCurve('1', piecewise.FromPoly(poly.New(68.4, -1.5), 0, 40))
	c.AddCurve('4', piecewise.FromPoly(poly.Constant(10), 0, 40))
	c.MarkTime(20, "update")
	out := c.Render()
	if !strings.Contains(out, "1") || !strings.Contains(out, "4") {
		t.Fatalf("curve glyphs missing:\n%s", out)
	}
	if !strings.Contains(out, "|") {
		t.Errorf("marker missing:\n%s", out)
	}
	if !strings.Contains(out, "update at t=20") {
		t.Errorf("marker legend missing:\n%s", out)
	}
	// Deterministic.
	if out != c.Render() {
		t.Error("rendering not deterministic")
	}
	// The descending line starts high (left) and ends low (right): the
	// first body row should contain '1' near the left.
	lines := strings.Split(out, "\n")
	if !strings.Contains(lines[0], "1") {
		t.Errorf("descending curve should touch the top row:\n%s", out)
	}
}

func TestChartDomainsClipped(t *testing.T) {
	c := NewChart(30, 6, 0, 100)
	// Curve only defined on [40, 60].
	c.AddCurve('x', piecewise.FromPoly(poly.Constant(5), 40, 60))
	out := c.Render()
	lines := strings.Split(out, "\n")
	for _, line := range lines {
		idx := strings.IndexRune(line, 'x')
		if idx < 0 {
			continue
		}
		// Column 10 chars label prefix; glyphs should sit in middle.
		col := idx - 10
		frac := float64(col) / 29
		if frac < 0.35 || frac > 0.65 {
			t.Errorf("glyph outside clipped domain at col %d:\n%s", col, out)
		}
	}
}

func TestChartExplicitScaleAndTinySizes(t *testing.T) {
	c := NewChart(1, 1, 0, 1) // clamped up
	c.YLo, c.YHi = 0, 10
	c.AddCurve('z', piecewise.FromPoly(poly.Constant(5), 0, 1))
	if out := c.Render(); !strings.Contains(out, "z") {
		t.Errorf("explicit scale render:\n%s", out)
	}
	empty := NewChart(20, 5, 0, 1)
	if out := empty.Render(); out == "" {
		t.Error("empty chart renders nothing")
	}
}

func TestTimeline(t *testing.T) {
	out := Timeline(40, 0, 40, []TimelineRow{
		{Label: "o3", Spans: [][2]float64{{0, 23.2}}},
		{Label: "o4", Spans: [][2]float64{{0, 40}}},
		{Label: "o1", Spans: [][2]float64{{23.2, 40}}},
	})
	lines := strings.Split(out, "\n")
	if len(lines) < 4 {
		t.Fatalf("short output:\n%s", out)
	}
	// o4 covers the full width, o3 only the left part.
	if strings.Count(lines[1], "█") <= strings.Count(lines[0], "█") {
		t.Errorf("o4 should cover more than o3:\n%s", out)
	}
	if !strings.HasPrefix(strings.TrimSpace(lines[0]), "o3") {
		t.Errorf("labels missing:\n%s", out)
	}
	// o1's bar starts in the right half.
	o1 := lines[2]
	first := strings.IndexRune(o1, '█')
	if first < len(o1)/2 {
		t.Errorf("o1 bar should start right of center:\n%s", out)
	}
}
