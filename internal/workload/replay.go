package workload

// Concurrent update-stream replay: the driver for exercising a sharded
// engine from many goroutines. A chronological stream cannot be applied
// concurrently without structure — two goroutines racing on the same
// object would break the per-object (and per-shard) chronology — so the
// stream is partitioned by a route function first and each partition is
// applied, in order, from its own goroutine. Routing with the engine's
// own ShardOf keeps every shard's stream chronological, which is
// exactly the discipline internal/shard requires.

import (
	"errors"
	"fmt"
	"sync"

	"repro/internal/mod"
)

// ReplayConcurrent partitions us by route(u.O) into parts groups,
// preserving relative order within each group, and applies each group
// from its own goroutine via apply (which must be safe for concurrent
// calls on distinct partitions — e.g. shard.Engine.Apply). It returns
// the joined errors of all partitions; a failed partition stops at its
// first error without affecting the others.
func ReplayConcurrent(us []mod.Update, parts int, route func(mod.OID) int, apply func(mod.Update) error) error {
	if parts <= 1 {
		for _, u := range us {
			if err := apply(u); err != nil {
				return err
			}
		}
		return nil
	}
	groups := make([][]mod.Update, parts)
	for _, u := range us {
		i := route(u.O)
		if i < 0 || i >= parts {
			return fmt.Errorf("workload: route(%s) = %d outside [0,%d)", u.O, i, parts)
		}
		groups[i] = append(groups[i], u)
	}
	errs := make([]error, parts)
	var wg sync.WaitGroup
	for i, g := range groups {
		if len(g) == 0 {
			continue
		}
		wg.Add(1)
		go func(i int, g []mod.Update) {
			defer wg.Done()
			for _, u := range g {
				if err := apply(u); err != nil {
					errs[i] = fmt.Errorf("workload: partition %d at %s: %w", i, u, err)
					return
				}
			}
		}(i, g)
	}
	wg.Wait()
	return errors.Join(errs...)
}

// ReplayBatches slices us into consecutive batches of batchSize
// (preserving stream order, hence per-object and per-shard chronology)
// and feeds each to apply — e.g. shard.Engine.ApplyBatch or the
// /update/batch endpoint. It stops at the first failed batch; the
// batch's partially applied prefix stays applied, exactly as the
// underlying batch appliers behave.
func ReplayBatches(us []mod.Update, batchSize int, apply func([]mod.Update) (int, error)) error {
	if batchSize <= 0 {
		batchSize = 1
	}
	for lo := 0; lo < len(us); lo += batchSize {
		hi := lo + batchSize
		if hi > len(us) {
			hi = len(us)
		}
		if _, err := apply(us[lo:hi]); err != nil {
			return fmt.Errorf("workload: batch at %d: %w", lo, err)
		}
	}
	return nil
}
