package workload

import (
	"errors"
	"strings"
	"sync"
	"testing"

	"repro/internal/geom"
	"repro/internal/mod"
)

func testStream(n int) []mod.Update {
	us := make([]mod.Update, n)
	for i := range us {
		us[i] = mod.New(mod.OID(i+1), float64(i), geom.Of(1, 0), geom.Of(0, 0))
	}
	return us
}

func TestReplayConcurrentPreservesPartitionOrder(t *testing.T) {
	const parts = 4
	us := testStream(200)
	var mu sync.Mutex
	seen := make(map[int][]float64)
	route := func(o mod.OID) int { return int(o) % parts }
	err := ReplayConcurrent(us, parts, route, func(u mod.Update) error {
		mu.Lock()
		defer mu.Unlock()
		i := route(u.O)
		seen[i] = append(seen[i], u.Tau)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for i, taus := range seen {
		total += len(taus)
		for k := 1; k < len(taus); k++ {
			if taus[k] <= taus[k-1] {
				t.Fatalf("partition %d applied out of order: %g after %g", i, taus[k], taus[k-1])
			}
		}
	}
	if total != len(us) {
		t.Fatalf("applied %d updates, want %d", total, len(us))
	}
}

func TestReplayConcurrentSequentialFallback(t *testing.T) {
	us := testStream(10)
	var got []mod.OID
	err := ReplayConcurrent(us, 1, func(mod.OID) int { return 0 }, func(u mod.Update) error {
		got = append(got, u.O)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	for i, o := range got {
		if o != us[i].O {
			t.Fatalf("sequential replay reordered: got %s at %d", o, i)
		}
	}
}

func TestReplayConcurrentStopsFailedPartitionOnly(t *testing.T) {
	const parts = 3
	us := testStream(90)
	var mu sync.Mutex
	counts := make([]int, parts)
	boom := errors.New("boom")
	err := ReplayConcurrent(us, parts, func(o mod.OID) int { return int(o) % parts }, func(u mod.Update) error {
		if int(u.O)%parts == 1 && u.O >= 10 {
			return boom
		}
		mu.Lock()
		counts[int(u.O)%parts]++
		mu.Unlock()
		return nil
	})
	if !errors.Is(err, boom) {
		t.Fatalf("err = %v, want wrapped boom", err)
	}
	if counts[0] != 30 || counts[2] != 30 {
		t.Fatalf("healthy partitions incomplete: %v", counts)
	}
	if counts[1] >= 30 {
		t.Fatalf("failed partition did not stop: %v", counts)
	}
}

func TestReplayConcurrentRejectsBadRoute(t *testing.T) {
	err := ReplayConcurrent(testStream(3), 2, func(mod.OID) int { return 5 }, func(mod.Update) error { return nil })
	if err == nil || !strings.Contains(err.Error(), "outside") {
		t.Fatalf("bad route error = %v", err)
	}
}
