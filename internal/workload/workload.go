// Package workload generates the synthetic moving-object populations and
// update streams used by the examples, tests and the experiment harness.
// The paper has no published datasets (it is a theory paper); these
// generators parametrize exactly the knobs its complexity claims speak
// about — the number of objects N, the update rate, and the intersection
// density m (see DESIGN.md, substitution 1). Every generator is seeded
// and deterministic.
package workload

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/trajectory"
)

// Config parametrizes a population of random movers.
type Config struct {
	// Seed drives all randomness; equal seeds give equal workloads.
	Seed int64
	// N is the number of objects.
	N int
	// Dim is the spatial dimension (default 2).
	Dim int
	// Extent bounds initial positions to [-Extent, Extent]^Dim
	// (default 1000).
	Extent float64
	// MaxSpeed bounds each velocity component (default 10).
	MaxSpeed float64
	// Start is the creation time of the population (default 0).
	Start float64
	// Turns, when positive, gives each object this many direction
	// changes at random times in (Start, Start+TurnHorizon], recorded in
	// the trajectory history (for past-query workloads).
	Turns       int
	TurnHorizon float64
}

func (c Config) withDefaults() Config {
	if c.Dim == 0 {
		c.Dim = 2
	}
	if c.Extent == 0 { //modlint:allow floatcmp -- unset-config sentinel
		c.Extent = 1000
	}
	if c.MaxSpeed == 0 { //modlint:allow floatcmp -- unset-config sentinel
		c.MaxSpeed = 10
	}
	if c.TurnHorizon == 0 { //modlint:allow floatcmp -- unset-config sentinel
		c.TurnHorizon = 100
	}
	return c
}

// randVec draws a vector with components uniform in [-scale, scale].
func randVec(rng *rand.Rand, dim int, scale float64) geom.Vec {
	v := make(geom.Vec, dim)
	for i := range v {
		v[i] = (rng.Float64()*2 - 1) * scale
	}
	return v
}

// RandomMovers builds a MOD of cfg.N linear movers bulk-loaded at
// cfg.Start (OIDs 1..N).
func RandomMovers(cfg Config) (*mod.DB, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := mod.NewDB(cfg.Dim, cfg.Start-1)
	for i := 1; i <= cfg.N; i++ {
		tr := trajectory.Linear(cfg.Start,
			randVec(rng, cfg.Dim, cfg.MaxSpeed),
			randVec(rng, cfg.Dim, cfg.Extent))
		for k := 0; k < cfg.Turns; k++ {
			tau := cfg.Start + cfg.TurnHorizon*(float64(k)+rng.Float64())/float64(cfg.Turns)
			nt, err := tr.ChDir(tau, randVec(rng, cfg.Dim, cfg.MaxSpeed))
			if err != nil {
				return nil, err
			}
			tr = nt
		}
		if err := db.Load(mod.OID(i), tr); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// ConvergingMovers builds a population that all moves roughly toward the
// origin, maximizing distance-curve crossings (a high-m workload for
// Theorem 4's O((m+N) log N) regime).
func ConvergingMovers(cfg Config) (*mod.DB, error) {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(cfg.Seed))
	db := mod.NewDB(cfg.Dim, cfg.Start-1)
	for i := 1; i <= cfg.N; i++ {
		pos := randVec(rng, cfg.Dim, cfg.Extent)
		// Velocity aimed at the origin with jitter and random speed.
		dir, err := pos.Scale(-1).Unit()
		if err != nil {
			dir = randVec(rng, cfg.Dim, 1)
		}
		speed := cfg.MaxSpeed * (0.2 + 0.8*rng.Float64())
		vel := dir.Scale(speed).Add(randVec(rng, cfg.Dim, cfg.MaxSpeed/10))
		if err := db.Load(mod.OID(i), trajectory.Linear(cfg.Start, vel, pos)); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// QueryTrajectory draws a random query-object trajectory inside the
// workload's extent.
func QueryTrajectory(cfg Config, seed int64) trajectory.Trajectory {
	cfg = cfg.withDefaults()
	rng := rand.New(rand.NewSource(seed))
	return trajectory.Linear(cfg.Start,
		randVec(rng, cfg.Dim, cfg.MaxSpeed),
		randVec(rng, cfg.Dim, cfg.Extent/4))
}

// StreamConfig parametrizes a chronological update stream.
type StreamConfig struct {
	Seed int64
	// Count is the number of updates.
	Count int
	// From, To delimit the update times (regular spacing with jitter —
	// the paper's "updates happen regularly" practical assumption).
	From, To float64
	// Mix of update kinds as weights (default mostly chdir).
	NewW, TerminateW, ChDirW float64
	// Extent/MaxSpeed for the parameters of new/chdir updates.
	Extent, MaxSpeed float64
}

// Stream produces a chronological update stream valid against db's
// current population (it tracks live objects as it generates). The
// returned updates are NOT applied to db.
func Stream(db *mod.DB, cfg StreamConfig) ([]mod.Update, error) {
	if cfg.Count <= 0 {
		return nil, nil
	}
	if !(cfg.From < cfg.To) {
		return nil, fmt.Errorf("workload: bad stream window [%g,%g]", cfg.From, cfg.To)
	}
	if cfg.NewW == 0 && cfg.TerminateW == 0 && cfg.ChDirW == 0 { //modlint:allow floatcmp -- unset-config sentinel: all-zero weights select the defaults
		cfg.NewW, cfg.TerminateW, cfg.ChDirW = 0.1, 0.1, 0.8
	}
	if cfg.Extent == 0 { //modlint:allow floatcmp -- unset-config sentinel
		cfg.Extent = 1000
	}
	if cfg.MaxSpeed == 0 { //modlint:allow floatcmp -- unset-config sentinel
		cfg.MaxSpeed = 10
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	dim := db.Dim()
	// Track the live set without mutating db.
	live := map[mod.OID]bool{}
	var liveList []mod.OID
	nextOID := mod.OID(1)
	for _, o := range db.Objects() {
		tr, err := db.Traj(o)
		if err != nil {
			return nil, err
		}
		if !tr.IsTerminated() {
			live[o] = true
			liveList = append(liveList, o)
		}
		if o >= nextOID {
			nextOID = o + 1
		}
	}
	total := cfg.NewW + cfg.TerminateW + cfg.ChDirW
	step := (cfg.To - cfg.From) / float64(cfg.Count)
	var out []mod.Update
	t := cfg.From
	for i := 0; i < cfg.Count; i++ {
		// Regular spacing with jitter, strictly increasing.
		t += step * (0.5 + rng.Float64())
		if t >= cfg.To {
			t = math.Nextafter(cfg.To, cfg.From) - float64(cfg.Count-i)*1e-9
		}
		r := rng.Float64() * total
		switch {
		case r < cfg.NewW || len(liveList) == 0:
			o := nextOID
			nextOID++
			out = append(out, mod.New(o, t,
				randVec(rng, dim, cfg.MaxSpeed), randVec(rng, dim, cfg.Extent)))
			live[o] = true
			liveList = append(liveList, o)
		case r < cfg.NewW+cfg.TerminateW && len(liveList) > 1:
			idx := rng.Intn(len(liveList))
			o := liveList[idx]
			out = append(out, mod.Terminate(o, t))
			delete(live, o)
			liveList = append(liveList[:idx], liveList[idx+1:]...)
		default:
			o := liveList[rng.Intn(len(liveList))]
			out = append(out, mod.ChDir(o, t, randVec(rng, dim, cfg.MaxSpeed)))
		}
	}
	// Enforce strict chronology (jitter could stall at the clamp).
	for i := 1; i < len(out); i++ {
		if out[i].Tau <= out[i-1].Tau {
			out[i].Tau = out[i-1].Tau + 1e-9
		}
	}
	return out, nil
}

// AirTraffic builds the 3-D air-traffic scenario used by the examples:
// n aircraft cruising at distinct altitudes with gentle lateral motion,
// plus recorded climbs and descents.
func AirTraffic(seed int64, n int) (*mod.DB, error) {
	rng := rand.New(rand.NewSource(seed))
	db := mod.NewDB(3, -1)
	for i := 1; i <= n; i++ {
		pos := geom.Of(rng.Float64()*800-400, rng.Float64()*800-400, 200+rng.Float64()*200)
		vel := geom.Of(rng.Float64()*8-4, rng.Float64()*8-4, 0)
		tr := trajectory.Linear(0, vel, pos)
		// A recorded altitude change for some aircraft.
		if i%3 == 0 {
			tau := 10 + rng.Float64()*30
			nt, err := tr.ChDir(tau, geom.Of(vel[0], vel[1], rng.Float64()*4-2))
			if err != nil {
				return nil, err
			}
			tr = nt
		}
		if err := db.Load(mod.OID(i), tr); err != nil {
			return nil, err
		}
	}
	return db, nil
}

// Dispatch builds the 2-D police-dispatch scenario of Example 7: n
// patrol cars moving at various speeds, plus the target trajectory
// (returned separately; the paper's "target train").
func Dispatch(seed int64, n int) (*mod.DB, trajectory.Trajectory, error) {
	rng := rand.New(rand.NewSource(seed))
	db := mod.NewDB(2, -1)
	for i := 1; i <= n; i++ {
		pos := geom.Of(rng.Float64()*2000-1000, rng.Float64()*2000-1000)
		speed := 15 + rng.Float64()*25
		ang := rng.Float64() * 2 * math.Pi
		vel := geom.Of(speed*math.Cos(ang), speed*math.Sin(ang))
		if err := db.Load(mod.OID(i), trajectory.Linear(0, vel, pos)); err != nil {
			return nil, trajectory.Trajectory{}, err
		}
	}
	target := trajectory.Linear(0, geom.Of(12, 0), geom.Of(-600, 50))
	return db, target, nil
}

// StationaryField builds n stationary objects (the Song–Roussopoulos [26]
// setting: only the query point moves) scattered over the extent.
func StationaryField(seed int64, n int, extent float64) (*mod.DB, error) {
	rng := rand.New(rand.NewSource(seed))
	db := mod.NewDB(2, -1)
	for i := 1; i <= n; i++ {
		pos := geom.Of(rng.Float64()*2*extent-extent, rng.Float64()*2*extent-extent)
		if err := db.Load(mod.OID(i), trajectory.Stationary(0, pos)); err != nil {
			return nil, err
		}
	}
	return db, nil
}
