package workload

import (
	"testing"

	"repro/internal/mod"
)

func TestRandomMoversDeterministic(t *testing.T) {
	a, err := RandomMovers(Config{Seed: 42, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	b, err := RandomMovers(Config{Seed: 42, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	if a.Len() != 50 || b.Len() != 50 {
		t.Fatalf("sizes %d %d", a.Len(), b.Len())
	}
	for _, o := range a.Objects() {
		ta, _ := a.Traj(o)
		tb, _ := b.Traj(o)
		if !ta.Equal(tb) {
			t.Fatalf("object %s differs across equal seeds", o)
		}
	}
	c, err := RandomMovers(Config{Seed: 43, N: 50})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for _, o := range a.Objects() {
		ta, _ := a.Traj(o)
		tc, _ := c.Traj(o)
		if !ta.Equal(tc) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical workloads")
	}
}

func TestRandomMoversWithTurns(t *testing.T) {
	db, err := RandomMovers(Config{Seed: 1, N: 10, Turns: 3, TurnHorizon: 50})
	if err != nil {
		t.Fatal(err)
	}
	for _, o := range db.Objects() {
		tr, _ := db.Traj(o)
		if got := len(tr.Pieces()); got != 4 {
			t.Fatalf("%s has %d pieces, want 4", o, got)
		}
	}
}

func TestConvergingMovers(t *testing.T) {
	db, err := ConvergingMovers(Config{Seed: 2, N: 30})
	if err != nil {
		t.Fatal(err)
	}
	// Converging movers should get closer to the origin initially.
	closer := 0
	for _, o := range db.Objects() {
		tr, _ := db.Traj(o)
		if tr.MustAt(10).Len2() < tr.MustAt(0).Len2() {
			closer++
		}
	}
	if closer < 25 {
		t.Errorf("only %d/30 movers converge", closer)
	}
}

func TestStreamChronologyAndValidity(t *testing.T) {
	db, err := RandomMovers(Config{Seed: 3, N: 20})
	if err != nil {
		t.Fatal(err)
	}
	us, err := Stream(db, StreamConfig{Seed: 4, Count: 200, From: 1, To: 100})
	if err != nil {
		t.Fatal(err)
	}
	if len(us) != 200 {
		t.Fatalf("got %d updates", len(us))
	}
	for i := 1; i < len(us); i++ {
		if !(us[i].Tau > us[i-1].Tau) {
			t.Fatalf("updates not strictly chronological at %d: %g then %g", i, us[i-1].Tau, us[i].Tau)
		}
	}
	// Every update must apply cleanly.
	if err := db.ApplyAll(us...); err != nil {
		t.Fatalf("stream invalid: %v", err)
	}
	// Errors.
	if _, err := Stream(db, StreamConfig{Count: 5, From: 9, To: 9}); err == nil {
		t.Error("bad window accepted")
	}
	if us, _ := Stream(db, StreamConfig{Count: 0, From: 0, To: 1}); us != nil {
		t.Error("zero count should produce nil")
	}
}

func TestAirTrafficAndDispatch(t *testing.T) {
	db, err := AirTraffic(5, 30)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 30 || db.Dim() != 3 {
		t.Fatalf("air traffic: %d objects dim %d", db.Len(), db.Dim())
	}
	cars, target, err := Dispatch(6, 15)
	if err != nil {
		t.Fatal(err)
	}
	if cars.Len() != 15 || cars.Dim() != 2 {
		t.Fatalf("dispatch: %d objects dim %d", cars.Len(), cars.Dim())
	}
	if !target.IsDefined() {
		t.Error("no target trajectory")
	}
}

func TestStationaryField(t *testing.T) {
	db, err := StationaryField(7, 25, 100)
	if err != nil {
		t.Fatal(err)
	}
	if db.Len() != 25 {
		t.Fatalf("len %d", db.Len())
	}
	for _, o := range db.Objects() {
		tr, _ := db.Traj(o)
		v, _ := tr.VelocityAt(1)
		if !v.IsZero() {
			t.Fatalf("%s moves", o)
		}
	}
	_ = mod.OID(1)
}

func TestQueryTrajectory(t *testing.T) {
	q1 := QueryTrajectory(Config{}, 1)
	q2 := QueryTrajectory(Config{}, 1)
	if !q1.Equal(q2) {
		t.Error("query trajectory not deterministic")
	}
}
