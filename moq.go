// Package moq is a moving-object query engine: a from-scratch Go
// implementation of "On Moving Object Queries" (Mokhtar, Su, Ibarra;
// PODS 2002).
//
// The library models a moving object database (MOD) as a set of
// piecewise-linear trajectories with chronological updates (new,
// terminate, chdir), and evaluates generalized-distance queries — k
// nearest neighbors, distance thresholds, and arbitrary FO(f) formulas —
// by the paper's plane-sweep technique: the curves f_o(t) of a
// generalized distance f are kept sorted along a sweeping time line, an
// event queue holds the next intersection of each adjacent pair, and
// query answers change only at those events.
//
// Three evaluation regimes are supported, matching the paper's taxonomy:
//
//   - past queries, over recorded history: RunPastKNN / RunPastWithin /
//     RunPastFormula (Theorem 4: O((m+N) log N));
//   - future and continuing queries, maintained eagerly while updates
//     stream in: NewKNNSession etc. (Theorem 5: O(N log N) init,
//     O(log N) per update under regular updates);
//   - query-trajectory changes replacing every curve at once
//     (Theorem 10: O(N)).
//
// The deeper machinery lives in internal packages (polynomial real-root
// isolation, piecewise-polynomial curves, the kinetic ordered list, the
// event queues, the sweep core, the constraint-language baseline); this
// package re-exports the stable surface.
package moq

import (
	"math"

	"repro/internal/collide"
	"repro/internal/core"
	"repro/internal/gdist"
	"repro/internal/geom"
	"repro/internal/mod"
	"repro/internal/query"
	"repro/internal/trajectory"
)

// Core model types, re-exported.
type (
	// Vec is a point or velocity in R^n.
	Vec = geom.Vec
	// OID identifies a moving object.
	OID = mod.OID
	// Trajectory is a continuous piecewise-linear motion history.
	Trajectory = trajectory.Trajectory
	// Update is one of the paper's update operations.
	Update = mod.Update
	// DB is a moving object database (O, T, tau).
	DB = mod.DB
	// GDistance maps trajectories to curves over time (Definition 6).
	GDistance = gdist.GDistance
	// AnswerSet is a query answer: per-object time intervals, from which
	// the snapshot / existential / universal answers derive.
	AnswerSet = query.AnswerSet
	// Interval is a closed time interval of an AnswerSet.
	Interval = query.Interval
	// SweepStats counts the work a sweep performed.
	SweepStats = core.Stats
	// Session drives future/continuing queries as updates arrive.
	Session = query.Session
	// KNNQuery is the incremental k-nearest-neighbors evaluator.
	KNNQuery = query.KNN
	// WithinQuery is the incremental threshold evaluator.
	WithinQuery = query.Within
	// FormulaQuery is the generic FO(f) evaluator.
	FormulaQuery = query.Formula
)

// FO(f) formula constructors, re-exported (see Examples 10 and 11 of the
// paper; build formulas as values, e.g.
// ForAll{Var: "z", Body: Atom{L: F{Var: "y"}, Op: LE, R: F{Var: "z"}}}).
type (
	// Atom compares two real terms.
	Atom = query.Atom
	// F is the real term f(var, t).
	F = query.F
	// C is a real-constant term.
	C = query.C
	// Not negates a formula.
	Not = query.Not
	// And conjoins formulas.
	And = query.And
	// Or disjoins formulas.
	Or = query.Or
	// Implies is material implication.
	Implies = query.Implies
	// ForAll quantifies over objects.
	ForAll = query.ForAll
	// Exists quantifies over objects.
	Exists = query.Exists
)

// Comparison operators for Atom.
const (
	EQ = query.EQ
	NE = query.NE
	LT = query.LT
	LE = query.LE
	GT = query.GT
	GE = query.GE
)

// V builds a vector from components.
func V(xs ...float64) Vec { return geom.Of(xs...) }

// NewDB creates an empty MOD for objects in R^dim with last-update time
// tau0.
func NewDB(dim int, tau0 float64) *DB { return mod.NewDB(dim, tau0) }

// New builds a create-object update: new(o, tau, velocity, position).
func New(o OID, tau float64, velocity, position Vec) Update {
	return mod.New(o, tau, velocity, position)
}

// Terminate builds a terminate(o, tau) update.
func Terminate(o OID, tau float64) Update { return mod.Terminate(o, tau) }

// ChDir builds a chdir(o, tau, velocity) update.
func ChDir(o OID, tau float64, velocity Vec) Update { return mod.ChDir(o, tau, velocity) }

// Linear returns the trajectory x = velocity*(t-start) + position on
// [start, +inf).
func Linear(start float64, velocity, position Vec) Trajectory {
	return trajectory.Linear(start, velocity, position)
}

// Stationary returns a trajectory parked at position from start onward.
func Stationary(start float64, position Vec) Trajectory {
	return trajectory.Stationary(start, position)
}

// ParseTrajectory reads the paper's constraint syntax, e.g.
//
//	x = (2, -1, 0)t + (-40, 23, 30) & 0 <= t <= 21 | x = ...
func ParseTrajectory(s string) (Trajectory, error) { return trajectory.Parse(s) }

// EuclideanSq is the squared Euclidean distance to a query trajectory
// (Example 8): a polynomial g-distance.
func EuclideanSq(q Trajectory) GDistance { return gdist.EuclideanSq{Query: q} }

// PointSq is the squared distance to a fixed point.
func PointSq(p Vec) GDistance { return gdist.PointSq{Point: p} }

// AxisSq is the squared distance to the query trajectory along one axis.
func AxisSq(q Trajectory, axis int) GDistance { return gdist.AxisSq{Query: q, Axis: axis} }

// InterceptTime is the fastest-arrival g-distance of Examples 7/9: the
// time for each object, at its current speed, to reach the target. The
// curve is a bounded-error piecewise-quadratic fit (maxErr; 0 means 1e-6)
// capped at cap (0 means 1e6) where the target is unreachable.
func InterceptTime(target Trajectory, cap, maxErr float64) GDistance {
	return gdist.Intercept{Target: target, Cap: cap, MaxErr: maxErr}
}

// RunPastKNN evaluates a past k-NN query (Example 6) over [lo, hi]:
// which objects are among the k nearest under f, and when. Theorem 4's
// regime: the whole window lies in recorded history.
func RunPastKNN(db *DB, f GDistance, k int, lo, hi float64) (*AnswerSet, SweepStats, error) {
	knn := query.NewKNN(k)
	st, err := query.RunPast(db, f, lo, hi, knn)
	if err != nil {
		return nil, SweepStats{}, err
	}
	return knn.Answer(), st, nil
}

// RunPastWithin evaluates a past threshold query: f(o, t) <= c.
func RunPastWithin(db *DB, f GDistance, c float64, lo, hi float64) (*AnswerSet, SweepStats, error) {
	w := query.NewWithin(c)
	st, err := query.RunPast(db, f, lo, hi, w)
	if err != nil {
		return nil, SweepStats{}, err
	}
	return w.Answer(), st, nil
}

// RunPastFormula evaluates an arbitrary FO(f) query (y, t, [lo,hi], phi).
func RunPastFormula(db *DB, f GDistance, y string, phi query.Node, lo, hi float64) (*AnswerSet, SweepStats, error) {
	form := query.NewFormula(y, phi)
	st, err := query.RunPast(db, f, lo, hi, form)
	if err != nil {
		return nil, SweepStats{}, err
	}
	if err := form.Err(); err != nil {
		return nil, SweepStats{}, err
	}
	return form.Answer(), st, nil
}

// NewKNNSession starts a continuing/future k-NN query at time lo (use
// math.Inf(1) or 0 for an unbounded hi with closed-form distances).
// Feed updates with sess.Apply, move time forward with sess.AdvanceTo,
// and read the live set from knn.Current() or the history from
// knn.Answer().
func NewKNNSession(db *DB, f GDistance, k int, lo, hi float64) (*Session, *KNNQuery, error) {
	knn := query.NewKNN(k)
	sess, err := query.NewSession(db, f, lo, hi, knn)
	if err != nil {
		return nil, nil, err
	}
	return sess, knn, nil
}

// NewWithinSession starts a continuing/future threshold query.
func NewWithinSession(db *DB, f GDistance, c float64, lo, hi float64) (*Session, *WithinQuery, error) {
	w := query.NewWithin(c)
	sess, err := query.NewSession(db, f, lo, hi, w)
	if err != nil {
		return nil, nil, err
	}
	return sess, w, nil
}

// ReplaceQueryDistance performs the Theorem 10 operation on a session: a
// chdir on the query trajectory replaces every g-distance curve in O(N)
// without re-sorting the precedence relation.
func ReplaceQueryDistance(sess *Session, f GDistance) error {
	return sess.E.ReplaceGDistance(f)
}

// Inf is a convenience for unbounded interval ends.
func Inf() float64 { return math.Inf(1) }

// Encounter is a proximity event between two objects (collision
// discovery, one of the paper's motivating applications).
type Encounter = collide.Encounter

// DetectEncounters finds every pair of objects that comes within radius
// of each other during [lo, hi], with exact encounter intervals
// (R-tree broad phase + polynomial-root narrow phase).
func DetectEncounters(db *DB, radius, lo, hi float64) ([]Encounter, error) {
	enc, _, err := collide.Detect(db, collide.Config{Radius: radius}, lo, hi)
	return enc, err
}

// RankTimeline tracks one object's proximity rank over [lo, hi]: a step
// function giving, at each instant, how many objects were nearer under f
// (-1 while the object does not exist).
func RankTimeline(db *DB, f GDistance, o OID, lo, hi float64) ([]query.RankStep, error) {
	rt := query.NewRankTracker(o)
	if _, err := query.RunPast(db, f, lo, hi, rt); err != nil {
		return nil, err
	}
	return rt.Steps(), nil
}

// NewHistorian snapshots the database and builds a lifetime interval
// index for efficient repeated past queries over the same history.
func NewHistorian(db *DB) (*query.Historian, error) { return query.NewHistorian(db) }

// QueryClass is the paper's past/future/continuing taxonomy
// (Definition 5), decidable for interval queries.
type QueryClass = query.Class

// Query classes.
const (
	Past       = query.Past
	Future     = query.Future
	Continuing = query.Continuing
)

// Classify places a query interval relative to the database's
// last-update time.
func Classify(lo, hi, tau float64) (QueryClass, error) { return query.Classify(lo, hi, tau) }

// ValidAnswer restricts an answer to its settled part (Definition 4's
// Q^v): memberships at or before tau survive any future update sequence.
func ValidAnswer(ans *AnswerSet, lo, hi, tau float64) *AnswerSet {
	return query.ValidAnswer(ans, lo, hi, tau)
}

// PredictedAnswer returns the revocable remainder: memberships beyond
// tau, correct only if no further update intervenes.
func PredictedAnswer(ans *AnswerSet, lo, hi, tau float64) *AnswerSet {
	return query.PredictedAnswer(ans, lo, hi, tau)
}

// TrackedSession is a continuing query whose query object is itself a
// database object (the paper's Section 5 closing extension): course
// changes of the tracked object retarget every curve via the Theorem 10
// O(N) path; all other updates cost O(log N).
type TrackedSession = query.TrackSession

// NewTrackedKNNSession starts a continuing k-NN watch around database
// object target. The target counts as its own nearest neighbor; ask for
// k+1 to see k others.
func NewTrackedKNNSession(db *DB, target OID, k int, lo, hi float64) (*TrackedSession, *KNNQuery, error) {
	return query.NewTrackKNNSession(db, target, k, lo, hi)
}
