package moq

import (
	"math"
	"testing"
)

// TestQuickstartFlow exercises the README's quickstart path end to end.
func TestQuickstartFlow(t *testing.T) {
	db := NewDB(2, -1)
	if err := db.ApplyAll(
		New(1, 0, V(0, 0), V(3, 4)),     // parked 5 away
		New(2, 0.5, V(-1, 0), V(20, 0)), // inbound
	); err != nil {
		t.Fatal(err)
	}
	ans, st, err := RunPastKNN(db, PointSq(V(0, 0)), 1, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if st.Events == 0 {
		t.Error("no events processed")
	}
	// o2 position 20.5-t (created at 0.5): |o2| < 5 when t > 15.5.
	iv2 := ans.Intervals(2)
	if len(iv2) != 1 || math.Abs(iv2[0].Lo-15.5) > 1e-7 {
		t.Errorf("o2 intervals %v, want takeover at 15.5", iv2)
	}
	if got := ans.At(10); len(got) != 1 || got[0] != 1 {
		t.Errorf("At(10) = %v", got)
	}
	if got := ans.At(20); len(got) != 1 || got[0] != 2 {
		t.Errorf("At(20) = %v", got)
	}
}

func TestWithinFacade(t *testing.T) {
	db := NewDB(1, -1)
	if err := db.Apply(New(1, 0, V(1), V(-10))); err != nil {
		t.Fatal(err)
	}
	ans, _, err := RunPastWithin(db, PointSq(V(0)), 25, 0.5, 20)
	if err != nil {
		t.Fatal(err)
	}
	iv := ans.Intervals(1)
	if len(iv) != 1 || math.Abs(iv[0].Lo-5) > 1e-7 || math.Abs(iv[0].Hi-15) > 1e-7 {
		t.Errorf("intervals %v, want [5,15]", iv)
	}
}

func TestFormulaFacade(t *testing.T) {
	db := NewDB(1, -1)
	if err := db.ApplyAll(
		New(1, 0, V(0), V(1)),
		New(2, 1, V(0), V(5)),
	); err != nil {
		t.Fatal(err)
	}
	phi := ForAll{Var: "z", Body: Atom{L: F{Var: "y"}, Op: LE, R: F{Var: "z"}}}
	ans, _, err := RunPastFormula(db, PointSq(V(0)), "y", phi, 2, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.At(5); len(got) != 1 || got[0] != 1 {
		t.Errorf("1-NN via formula = %v", got)
	}
}

func TestSessionFacade(t *testing.T) {
	db := NewDB(2, -1)
	if err := db.ApplyAll(
		New(1, 0, V(0, 0), V(10, 0)),
		New(2, 0.5, V(0, 0), V(1, 1)),
	); err != nil {
		t.Fatal(err)
	}
	// Query object moves right from the origin.
	q := Linear(0, V(1, 0), V(0, 0))
	sess, knn, err := NewKNNSession(db, EuclideanSq(q), 1, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if err := sess.AdvanceTo(6); err != nil {
		t.Fatal(err)
	}
	cur := knn.Current()
	if len(cur) != 1 || cur[0] != 1 {
		t.Errorf("current = %v, want o1 (query at (6,0))", cur)
	}
	// Theorem 10: a chdir on the QUERY trajectory at the current time.
	// The new g-distance coincides with the old one at t=6 (same query
	// position), so the precedence relation stays valid — the premise
	// of the O(N) replacement.
	turned, err := q.ChDir(6, V(-2, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := ReplaceQueryDistance(sess, EuclideanSq(turned)); err != nil {
		t.Fatal(err)
	}
	// Heading back toward o2 at (1,1): o2 takes over at qx = 49/9.
	if err := sess.AdvanceTo(8); err != nil {
		t.Fatal(err)
	}
	cur = knn.Current()
	if len(cur) != 1 || cur[0] != 2 {
		t.Errorf("after query turn = %v, want o2", cur)
	}
	if err := sess.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestTrajectoryFacade(t *testing.T) {
	tr, err := ParseTrajectory("x = (1, 0)t + (0, 0) & 0 <= t")
	if err != nil {
		t.Fatal(err)
	}
	if got := tr.MustAt(5); !got.ApproxEqual(V(5, 0), 1e-12) {
		t.Errorf("parsed At(5) = %v", got)
	}
	if Linear(0, V(1), V(2)).MustAt(3)[0] != 5 {
		t.Error("Linear")
	}
	if !Stationary(0, V(7)).MustAt(100).ApproxEqual(V(7), 0) {
		t.Error("Stationary")
	}
	if !math.IsInf(Inf(), 1) {
		t.Error("Inf")
	}
}

func TestInterceptFacade(t *testing.T) {
	db := NewDB(2, -1)
	// Fast interceptor far away vs slow one nearby.
	if err := db.ApplyAll(
		New(1, 0, V(0, 30), V(500, -300)), // fast, far
		New(2, 0.5, V(0, 2), V(60, -40)),  // slow, near
	); err != nil {
		t.Fatal(err)
	}
	target := Linear(0, V(5, 0), V(0, 0))
	ans, _, err := RunPastKNN(db, InterceptTime(target, 0, 0), 1, 1, 50)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.Existential(); len(got) == 0 {
		t.Error("no fastest-arrival answer")
	}
}

func TestDetectEncountersFacade(t *testing.T) {
	db := NewDB(2, -1)
	if err := db.ApplyAll(
		New(1, 0, V(1, 0), V(-50, 0)),
		New(2, 0.5, V(-1, 0), V(50, 6)),
	); err != nil {
		t.Fatal(err)
	}
	enc, err := DetectEncounters(db, 10, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	if len(enc) != 1 || enc[0].A != 1 || enc[0].B != 2 {
		t.Fatalf("encounters %+v", enc)
	}
}

func TestRankTimelineFacade(t *testing.T) {
	db := NewDB(1, -1)
	if err := db.ApplyAll(
		New(1, 0, V(0), V(1)),
		New(2, 0.5, V(-1), V(20)),
	); err != nil {
		t.Fatal(err)
	}
	steps, err := RankTimeline(db, PointSq(V(0)), 2, 1, 30)
	if err != nil {
		t.Fatal(err)
	}
	if len(steps) < 2 {
		t.Fatalf("steps = %v", steps)
	}
	// o2 starts behind o1 (rank 1) and overtakes.
	if steps[0].Rank != 1 {
		t.Errorf("initial rank %d, want 1", steps[0].Rank)
	}
	sawZero := false
	for _, s := range steps {
		if s.Rank == 0 {
			sawZero = true
		}
	}
	if !sawZero {
		t.Errorf("o2 never reached rank 0: %v", steps)
	}
}

func TestHistorianFacade(t *testing.T) {
	db := NewDB(1, -1)
	if err := db.ApplyAll(
		New(1, 0, V(0), V(1)),
		New(2, 0.5, V(0), V(5)),
	); err != nil {
		t.Fatal(err)
	}
	h, err := NewHistorian(db)
	if err != nil {
		t.Fatal(err)
	}
	ans, st, err := h.KNN(PointSq(V(0)), 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if st.Seeded != 2 {
		t.Errorf("Seeded = %d", st.Seeded)
	}
	if got := ans.At(5); len(got) != 1 || got[0] != 1 {
		t.Errorf("answer = %v", got)
	}
}

func TestAxisSqFacade(t *testing.T) {
	db := NewDB(2, -1)
	if err := db.ApplyAll(
		New(1, 0, V(0, 0), V(100, 1)), // far in x, 1 in y
		New(2, 0.5, V(0, 0), V(0, 50)),
	); err != nil {
		t.Fatal(err)
	}
	q := Stationary(0, V(0, 0))
	// Along the y axis, o1 (Δy=1) beats o2 (Δy=50).
	ans, _, err := RunPastKNN(db, AxisSq(q, 1), 1, 1, 10)
	if err != nil {
		t.Fatal(err)
	}
	if got := ans.At(5); len(got) != 1 || got[0] != 1 {
		t.Errorf("axis 1-NN = %v", got)
	}
}

func TestTrackedSessionFacade(t *testing.T) {
	db := NewDB(2, -1)
	if err := db.ApplyAll(
		New(1, 0, V(1, 0), V(0, 0)),
		New(2, 0.5, V(0, 0), V(20, 0)),
		New(3, 0.75, V(0, 0), V(-4, 0)),
	); err != nil {
		t.Fatal(err)
	}
	ts, knn, err := NewTrackedKNNSession(db, 1, 2, 1, 100)
	if err != nil {
		t.Fatal(err)
	}
	db.OnUpdate(func(u Update) {
		if err := ts.Apply(u); err != nil {
			t.Errorf("apply: %v", err)
		}
	})
	if err := ts.AdvanceTo(6); err != nil {
		t.Fatal(err)
	}
	if cur := knn.Current(); len(cur) != 2 || cur[1] != 3 {
		t.Fatalf("at 6: %v", cur)
	}
	// Target turns back at 12: o3 retakes second place by t=17.
	if err := db.Apply(ChDir(1, 12, V(-1, 0))); err != nil {
		t.Fatal(err)
	}
	if err := ts.AdvanceTo(17); err != nil {
		t.Fatal(err)
	}
	if cur := knn.Current(); cur[1] != 3 {
		t.Fatalf("at 17: %v, want o3 after the turn", cur)
	}
}
